//! Workload generation.
//!
//! The paper-era evaluation style (Sundell & Tsigas IPDPS 2003, Michael
//! PODC 2002): each thread runs a fixed number of operations drawn from a
//! percentage mix, with keys uniform over a range. Streams are seeded
//! deterministically per `(seed, thread)` so runs are reproducible and
//! scheme comparisons see identical operation sequences.

use crate::rng::SmallRng;

/// The operation classes the experiment drivers understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Insert / push / enqueue.
    Insert,
    /// Delete-min / pop / dequeue.
    Remove,
    /// Read-only lookup.
    Lookup,
}

/// A percentage mix over [`OpKind`]s.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Percent of operations that insert (0–100).
    pub insert_pct: u8,
    /// Percent that remove; the rest are lookups.
    pub remove_pct: u8,
}

impl OpMix {
    /// The paper-era default: 50% insert / 50% delete.
    pub const FIFTY_FIFTY: OpMix = OpMix {
        insert_pct: 50,
        remove_pct: 50,
    };

    /// Mix with lookups: e.g. `OpMix::new(20, 10)` = 20% insert, 10%
    /// remove, 70% lookup.
    pub fn new(insert_pct: u8, remove_pct: u8) -> Self {
        assert!(insert_pct as u16 + remove_pct as u16 <= 100);
        Self {
            insert_pct,
            remove_pct,
        }
    }
}

/// Full workload configuration for one experiment cell.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadCfg {
    /// Operation mix.
    pub mix: OpMix,
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Base seed; thread `t` uses stream `seed ⊕ t`.
    pub seed: u64,
    /// Structure is pre-filled with this many elements before measuring.
    pub prefill: usize,
}

impl WorkloadCfg {
    /// The E1 configuration: 50/50 insert/delete-min, keys in `0..2^20`.
    pub fn e1_default() -> Self {
        Self {
            mix: OpMix::FIFTY_FIFTY,
            key_range: 1 << 20,
            seed: 0x5EED,
            prefill: 512,
        }
    }

    /// The per-thread operation stream.
    pub fn stream(&self, thread: usize) -> WorkloadStream {
        WorkloadStream {
            rng: SmallRng::seed_from_u64(
                self.seed ^ (thread as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            mix: self.mix,
            key_range: self.key_range,
        }
    }
}

/// A deterministic per-thread stream of `(OpKind, key)` pairs.
pub struct WorkloadStream {
    rng: SmallRng,
    mix: OpMix,
    key_range: u64,
}

impl WorkloadStream {
    /// Draws the next operation.
    pub fn next_op(&mut self) -> (OpKind, u64) {
        let roll = self.rng.gen_range(100) as u8;
        let kind = if roll < self.mix.insert_pct {
            OpKind::Insert
        } else if roll < self.mix.insert_pct + self.mix.remove_pct {
            OpKind::Remove
        } else {
            OpKind::Lookup
        };
        (kind, self.rng.gen_range(self.key_range.max(1)))
    }

    /// Draws just a key.
    pub fn next_key(&mut self) -> u64 {
        self.rng.gen_range(self.key_range.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_thread() {
        let cfg = WorkloadCfg::e1_default();
        let a: Vec<_> = {
            let mut s = cfg.stream(3);
            (0..100).map(|_| s.next_op()).collect()
        };
        let b: Vec<_> = {
            let mut s = cfg.stream(3);
            (0..100).map(|_| s.next_op()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<_> = {
            let mut s = cfg.stream(4);
            (0..100).map(|_| s.next_op()).collect()
        };
        assert_ne!(a, c, "different threads get different streams");
    }

    #[test]
    fn mix_respects_percentages_statistically() {
        let cfg = WorkloadCfg {
            mix: OpMix::new(30, 20),
            key_range: 100,
            seed: 7,
            prefill: 0,
        };
        let mut s = cfg.stream(0);
        let mut counts = [0u32; 3];
        for _ in 0..100_000 {
            match s.next_op().0 {
                OpKind::Insert => counts[0] += 1,
                OpKind::Remove => counts[1] += 1,
                OpKind::Lookup => counts[2] += 1,
            }
        }
        assert!((counts[0] as f64 / 1000.0 - 30.0).abs() < 2.0, "{counts:?}");
        assert!((counts[1] as f64 / 1000.0 - 20.0).abs() < 2.0, "{counts:?}");
        assert!((counts[2] as f64 / 1000.0 - 50.0).abs() < 2.0, "{counts:?}");
    }

    #[test]
    fn keys_stay_in_range() {
        let cfg = WorkloadCfg {
            mix: OpMix::FIFTY_FIFTY,
            key_range: 17,
            seed: 1,
            prefill: 0,
        };
        let mut s = cfg.stream(0);
        for _ in 0..10_000 {
            assert!(s.next_key() < 17);
        }
    }

    #[test]
    #[should_panic]
    fn over_100_percent_mix_rejected() {
        let _ = OpMix::new(80, 30);
    }
}
