//! Dedicated supervisor thread for `wfrc_core::sentinel`-style tickers.
//!
//! The sentinel is cooperative — any worker can donate a `tick()` — but
//! most harnesses (and the E10/E12 experiments) want the production shape:
//! one background thread ticking at a fixed cadence while the workload
//! threads never think about recovery. This module provides that thread,
//! closure-based so it works over any ticker (a `Sentinel` over a WFRC
//! domain, one over a lease pool, one over the LFRC baseline, or several
//! chained) without this crate depending on `wfrc-core` — which depends on
//! this crate for its RNG.
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use wfrc_sim::supervisor::Supervisor;
//!
//! let ticks = AtomicU64::new(0);
//! std::thread::scope(|scope| {
//!     let sup = Supervisor::spawn_scoped(
//!         scope,
//!         core::time::Duration::from_micros(50),
//!         || {
//!             ticks.fetch_add(1, Ordering::Relaxed);
//!         },
//!     );
//!     while ticks.load(Ordering::Relaxed) < 10 {
//!         std::thread::yield_now();
//!     }
//!     sup.stop();
//! });
//! assert!(ticks.load(Ordering::Relaxed) >= 10);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::Scope;
use std::time::Duration;

use crate::exec::StopFlag;

/// Handle to a running supervisor thread: stop it, read its tick count.
/// The thread exits promptly after [`Supervisor::stop`]; scoped spawns
/// join at scope exit, owned spawns via [`OwnedSupervisor::join`].
pub struct Supervisor {
    stop: Arc<StopFlag>,
    ticks: Arc<AtomicU64>,
}

impl Supervisor {
    /// Spawns a scoped supervisor thread calling `tick` every `period`
    /// (a zero period means back-to-back ticks with only a yield between).
    /// The scope joins the thread on exit, so call [`Supervisor::stop`]
    /// before the scope closes or it will tick forever.
    pub fn spawn_scoped<'scope, 'env, F>(
        scope: &'scope Scope<'scope, 'env>,
        period: Duration,
        tick: F,
    ) -> Supervisor
    where
        F: Fn() + Send + 'scope,
    {
        let stop = Arc::new(StopFlag::new());
        let ticks = Arc::new(AtomicU64::new(0));
        let (stop2, ticks2) = (Arc::clone(&stop), Arc::clone(&ticks));
        scope.spawn(move || run_loop(&stop2, &ticks2, period, tick));
        Supervisor { stop, ticks }
    }

    /// Spawns a free-standing supervisor thread (for harnesses without a
    /// convenient scope). The closure must be `'static`; join via the
    /// returned [`OwnedSupervisor`].
    pub fn spawn<F>(period: Duration, tick: F) -> OwnedSupervisor
    where
        F: Fn() + Send + 'static,
    {
        let stop = Arc::new(StopFlag::new());
        let ticks = Arc::new(AtomicU64::new(0));
        let (stop2, ticks2) = (Arc::clone(&stop), Arc::clone(&ticks));
        let thread = std::thread::spawn(move || run_loop(&stop2, &ticks2, period, tick));
        OwnedSupervisor {
            inner: Supervisor { stop, ticks },
            thread: Some(thread),
        }
    }

    /// Signals the supervisor thread to exit after its current tick.
    pub fn stop(&self) {
        self.stop.stop();
    }

    /// Ticks performed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

/// A [`Supervisor`] owning its thread (non-scoped spawn); stops and joins
/// on drop.
pub struct OwnedSupervisor {
    inner: Supervisor,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl OwnedSupervisor {
    /// Signals the thread to exit after its current tick.
    pub fn stop(&self) {
        self.inner.stop();
    }

    /// Ticks performed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.inner.ticks()
    }

    /// Stops and joins the thread, returning the total tick count.
    pub fn join(mut self) -> u64 {
        self.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.ticks()
    }
}

impl Drop for OwnedSupervisor {
    fn drop(&mut self) {
        self.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn run_loop(stop: &StopFlag, ticks: &AtomicU64, period: Duration, tick: impl Fn()) {
    while !stop.is_stopped() {
        tick();
        ticks.fetch_add(1, Ordering::Relaxed);
        if period.is_zero() {
            std::thread::yield_now();
        } else {
            // Sleep in small slices so stop() is honored promptly even at
            // long periods.
            let mut left = period;
            while !stop.is_stopped() && !left.is_zero() {
                let slice = left.min(Duration::from_millis(1));
                std::thread::sleep(slice);
                left = left.saturating_sub(slice);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_supervisor_ticks_and_stops() {
        let count = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let sup = Supervisor::spawn_scoped(scope, Duration::ZERO, || {
                count.fetch_add(1, Ordering::Relaxed);
            });
            while count.load(Ordering::Relaxed) < 100 {
                std::thread::yield_now();
            }
            sup.stop();
        });
        let at_stop = count.load(Ordering::Relaxed);
        assert!(at_stop >= 100);
        // Joined: no more ticks happen.
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(count.load(Ordering::Relaxed), at_stop);
    }

    #[test]
    fn owned_supervisor_joins_on_drop() {
        let sup = Supervisor::spawn(Duration::from_micros(10), || {});
        while sup.ticks() < 3 {
            std::thread::yield_now();
        }
        let total = sup.join();
        assert!(total >= 3);
    }
}
