//! Fixed-bucket log-scale latency histogram.
//!
//! Per-operation latency recording for the E4/E6 experiments must not
//! allocate or lock on the record path (it sits inside the measured loop).
//! This histogram uses 2-bits-of-mantissa log buckets over `u64`
//! nanoseconds — 256 buckets, ~19% worst-case relative error per bucket
//! boundary, `record` is a handful of ALU ops and one array increment.

const SUB_BITS: u32 = 2;
const SUB: usize = 1 << SUB_BITS;
/// Number of buckets: 64 exponents × 4 sub-buckets.
pub const BUCKETS: usize = 64 * SUB;

/// A log-scale histogram of `u64` samples (typically nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_BITS)) as usize & (SUB - 1);
    ((exp as usize) << SUB_BITS | sub).min(BUCKETS - 1)
}

/// Representative (lower-bound) value of a bucket.
fn bucket_floor(b: usize) -> u64 {
    if b < SUB {
        return b as u64;
    }
    let exp = (b >> SUB_BITS) as u32;
    let sub = (b & (SUB - 1)) as u64;
    (1u64 << exp) | sub << (exp - SUB_BITS)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        if v > self.max {
            self.max = v;
        }
        if v < self.min {
            self.min = v;
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded sample.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact mean of recorded samples.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate quantile (`q` in 0..=1): lower bound of the bucket
    /// containing the q-th sample; the max is reported exactly for q = 1.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(b);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_monotone_and_bounded() {
        let mut prev = 0;
        for v in [0u64, 1, 2, 3, 4, 7, 8, 100, 1_000, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket order broke at {v}");
            assert!(b < BUCKETS);
            prev = b;
        }
    }

    #[test]
    fn bucket_floor_le_value() {
        for v in [0u64, 1, 5, 123, 999, 4096, 1 << 33, u64::MAX / 2] {
            let f = bucket_floor(bucket_of(v));
            assert!(f <= v, "floor {f} > value {v}");
            // Relative error bound of the 2-bit mantissa.
            if v > 4 {
                assert!((v - f) as f64 / v as f64 <= 0.25, "v={v} floor={f}");
            }
        }
    }

    #[test]
    fn stats_on_known_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.len(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
        assert!((h.mean() - 500.5).abs() < 0.01);
        let p50 = h.quantile(0.5);
        assert!((400..=510).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.min(), 10);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
