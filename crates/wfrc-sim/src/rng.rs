//! Small deterministic PRNG for workload generation and randomized tests.
//!
//! The harness needs reproducible per-thread streams, not cryptographic
//! quality, and the repository builds offline with zero external
//! dependencies — so the generator is implemented in-tree. The core is
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): one 64-bit add plus a
//! finalizer of three xor-shift-multiply rounds. It passes the statistical
//! checks the workload tests make (uniformity within a couple of percent
//! over 10⁵ draws) and every `(seed, stream)` pair is an independent,
//! reproducible sequence.

/// A 64-bit SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed. Identical seeds yield identical
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound == 0` returns 0).
    ///
    /// Uses multiply-shift range reduction (Lemire 2019); the bias for any
    /// bound this harness uses (≤ 2^32) is far below what the statistical
    /// tests can resolve.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw: true with probability `p` (clamped to `0..=1`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let av: Vec<_> = (0..16).map(|_| a.next_u64()).collect();
        let bv: Vec<_> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        assert_eq!(r.gen_range(0), 0);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(0xDEAD);
        let mut counts = [0u32; 4];
        for _ in 0..100_000 {
            counts[r.gen_range(4) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 - 25_000.0).abs() < 1_000.0, "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SmallRng::seed_from_u64(99);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 - 30_000.0).abs() < 1_500.0, "{hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
