//! Measurement harness for the reproduction's experiment suite (E1–E9).
//!
//! The paper reports one experiment in prose (§5: priority-queue throughput
//! parity) and makes step-count claims its venue would have measured; this
//! crate provides the shared machinery every `bench/` binary uses to
//! regenerate those results:
//!
//! * [`workload`] — operation mixes and key distributions with
//!   deterministic per-thread RNG streams;
//! * [`rng`] — the in-tree SplitMix64 generator behind those streams (the
//!   repository builds offline with zero external dependencies);
//! * [`exec`] — barrier-started thread executors (fixed-op and fixed-time)
//!   returning per-thread results;
//! * [`latency`] — a fixed-bucket log-scale histogram for per-op latency
//!   (no allocation on the record path);
//! * [`stats`] — summaries (mean/percentiles/max) and fixed-width table
//!   printing, plus JSON export for EXPERIMENTS.md.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod exec;
pub mod latency;
pub mod rng;
pub mod stats;
pub mod supervisor;
pub mod workload;

pub use exec::{run_fixed_ops, run_timed, PollLoop, StopFlag};
pub use latency::Histogram;
pub use rng::SmallRng;
pub use stats::{Summary, Table};
pub use supervisor::{OwnedSupervisor, Supervisor};
pub use workload::{OpKind, OpMix, WorkloadCfg, WorkloadStream};
