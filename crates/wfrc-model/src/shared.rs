//! The shared-memory model: the Figure 4 globals, small enough to
//! enumerate.

/// Threads in the model (the announcement matrices are `T × T`).
pub const MODEL_THREADS: usize = 2;
/// Nodes in the model arena.
pub const MODEL_NODES: usize = 2;

/// A node identifier (index into the model arena).
pub type NodeId = usize;

/// An announcement-slot word: the paper's `union LinkOrPointer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnnWord {
    /// ⊥ — empty or consumed.
    #[default]
    Empty,
    /// A published link announcement (the model has one link, so the
    /// address is implicit).
    Announced,
    /// A helper's answer.
    Answer(Option<NodeId>),
}

/// Outcome of the weak-aware release claim (PR 10): mirrors
/// `wfrc_core::node::Claim` over the packed strong/weak word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Claim {
    /// Strong count still nonzero — the releaser walks away.
    Busy,
    /// Claimed with no weak references: the node frees wholesale.
    Free,
    /// Claimed DEAD-but-weak: the memory stays until the weak count
    /// drains; the claim deposited a guard weak reference.
    DeadWeak,
}

/// The entire shared state. `Clone + Eq + Hash` so the explorer can
/// memoize visited states.
///
/// The implementation packs strong count, weak count, claim bit, and DEAD
/// bit into one 64-bit word so every transition is a single FAA/CAS; the
/// model splits them into fields (`mm_ref`, `weak`, `dead`) but mutates
/// them together inside single `step()` accesses, which is the same
/// atomicity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shared {
    /// The single shared link under test.
    pub link: Option<NodeId>,
    /// `mm_ref` per node (raw convention: count = mm_ref / 2, odd = claimed).
    pub mm_ref: [i32; MODEL_NODES],
    /// Weak count per node (the packed word's bits 32..63).
    pub weak: [u32; MODEL_NODES],
    /// DEAD bit per node (bit 63): claimed with weak survivors.
    pub dead: [bool; MODEL_NODES],
    /// Free set: node has been handed to `FreeNode`.
    pub freed: [bool; MODEL_NODES],
    /// `annReadAddr[t][i]`.
    pub ann_read: [[AnnWord; MODEL_THREADS]; MODEL_THREADS],
    /// `annIndex[t]`.
    pub ann_index: [usize; MODEL_THREADS],
    /// `annBusy[t][i]`.
    pub ann_busy: [[u8; MODEL_THREADS]; MODEL_THREADS],
    /// Ghost: per-thread witness sets — which link values each thread's
    /// *currently active* dereference has seen the link hold. Bit `n` set =
    /// value `Some(n)` occurred; bit `MODEL_NODES` = `None` occurred.
    pub witness: [u8; MODEL_THREADS],
    /// Ghost: whether each thread currently has an active top-level deref
    /// window (for witness maintenance).
    pub deref_active: [bool; MODEL_THREADS],
}

impl Shared {
    /// Initial state: `link = Some(node0)` holding one reference
    /// (`mm_ref = 2`); every other node starts with one thread-owned
    /// reference (`mm_ref = 2`) so scripts can CAS it in.
    pub fn initial() -> Self {
        let mut s = Self {
            link: Some(0),
            mm_ref: [2; MODEL_NODES],
            weak: [0; MODEL_NODES],
            dead: [false; MODEL_NODES],
            freed: [false; MODEL_NODES],
            ann_read: Default::default(),
            ann_index: [0; MODEL_THREADS],
            ann_busy: [[0; MODEL_THREADS]; MODEL_THREADS],
            witness: [0; MODEL_THREADS],
            deref_active: [false; MODEL_THREADS],
        };
        s.note_link_value();
        s
    }

    /// FAA on a node's `mm_ref`. Panics (= model violation) on underflow.
    pub fn faa(&mut self, n: NodeId, delta: i32) -> i32 {
        let old = self.mm_ref[n];
        self.mm_ref[n] += delta;
        assert!(
            self.mm_ref[n] >= 0,
            "mm_ref underflow on node {n}: {} + {delta}",
            old
        );
        old
    }

    /// The `ReleaseRef` R2 claim: `mm_ref == 0 && CAS(mm_ref, 0, 1)`.
    pub fn try_claim(&mut self, n: NodeId) -> bool {
        if self.mm_ref[n] == 0 {
            self.mm_ref[n] = 1;
            true
        } else {
            false
        }
    }

    /// The weak-aware R2 claim (PR 10): one CAS over the packed word.
    /// With weak survivors the claim deposits a **guard** weak reference
    /// so no concurrent weak drop can finalize the header while the
    /// claimer is still stripping links.
    pub fn try_claim_weak(&mut self, n: NodeId) -> Claim {
        if self.mm_ref[n] != 0 {
            return Claim::Busy;
        }
        if self.weak[n] == 0 {
            self.mm_ref[n] = 1;
            Claim::Free
        } else {
            self.mm_ref[n] = 1;
            self.dead[n] = true;
            self.weak[n] += 1; // the claim CAS's guard weak reference
            Claim::DeadWeak
        }
    }

    /// FAA on a node's weak count. Underflow is a model violation.
    pub fn faa_weak(&mut self, n: NodeId, delta: i32) {
        let next = self.weak[n] as i32 + delta;
        assert!(
            next >= 0,
            "weak underflow on node {n}: {} + {delta}",
            self.weak[n]
        );
        self.weak[n] = next as u32;
    }

    /// The finalize CAS: `word == DEAD|1 && CAS(DEAD|1, 1)` — exactly one
    /// caller wins, landing the header at `FREE_REF`.
    pub fn maybe_finalize(&mut self, n: NodeId) -> bool {
        if self.dead[n] && self.weak[n] == 0 && self.mm_ref[n] == 1 {
            self.dead[n] = false;
            true
        } else {
            false
        }
    }

    /// The upgrade CAS: succeeds iff the claim bit is clear at this access
    /// — the linearization point of `Weak::upgrade`. Success from
    /// `mm_ref == 0` is the legal pre-claim revival window (releases
    /// linearize at the R2 claim, not the R1 FAA).
    pub fn try_upgrade(&mut self, n: NodeId) -> bool {
        assert!(
            self.weak[n] > 0,
            "upgrade without a weak reference on node {n}"
        );
        if self.mm_ref[n] % 2 == 1 {
            false
        } else {
            self.mm_ref[n] += 2;
            assert!(
                !self.freed[n],
                "use-after-free: upgrade minted a strong reference on freed node {n}"
            );
            true
        }
    }

    /// `FreeNode` abstracted: move to the free set. Double-free is a model
    /// violation.
    ///
    /// The count need not be exactly 1: concurrent dereferences may have
    /// landed *spurious* `FAA(+2)`s on the node between the winning R2
    /// claim and this free — the paper's Lemma 3 argues each such count
    /// carries a pending `ReleaseRef` that will drain it. The claim bit
    /// (odd value) must be set, though.
    pub fn free(&mut self, n: NodeId) {
        assert!(!self.freed[n], "double free of node {n}");
        assert!(
            self.mm_ref[n] % 2 == 1,
            "free of unclaimed node {n} (mm_ref = {})",
            self.mm_ref[n]
        );
        assert_eq!(self.weak[n], 0, "free of weak-held node {n}");
        assert!(!self.dead[n], "free of unfinalized DEAD node {n}");
        self.freed[n] = true;
    }

    /// CAS on the link; records the new value into active witnesses.
    pub fn link_cas(&mut self, old: Option<NodeId>, new: Option<NodeId>) -> bool {
        if self.link == old {
            self.link = new;
            self.note_link_value();
            true
        } else {
            false
        }
    }

    /// Ghost: fold the current link value into every active deref witness.
    pub fn note_link_value(&mut self) {
        let bit = match self.link {
            Some(n) => 1u8 << n,
            None => 1u8 << MODEL_NODES,
        };
        for t in 0..MODEL_THREADS {
            if self.deref_active[t] {
                self.witness[t] |= bit;
            }
        }
    }

    /// Ghost: open thread `t`'s top-level deref window.
    pub fn open_witness(&mut self, t: usize) {
        self.deref_active[t] = true;
        self.witness[t] = 0;
        self.note_link_value();
    }

    /// Ghost: close the window and check the returned value was witnessed
    /// (Lemma 2: the dereference returns a value the link held during the
    /// operation).
    pub fn close_witness(&mut self, t: usize, returned: Option<NodeId>) {
        let bit = match returned {
            Some(n) => 1u8 << n,
            None => 1u8 << MODEL_NODES,
        };
        assert!(
            self.witness[t] & bit != 0,
            "thread {t} deref returned {returned:?}, never held by the link during the op \
             (witness mask {:#b})",
            self.witness[t]
        );
        self.deref_active[t] = false;
        self.witness[t] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_counts() {
        let s = Shared::initial();
        assert_eq!(s.link, Some(0));
        assert_eq!(s.mm_ref, [2, 2]);
        assert!(!s.freed.iter().any(|&f| f));
    }

    #[test]
    fn faa_and_claim() {
        let mut s = Shared::initial();
        s.faa(0, -2);
        assert!(s.try_claim(0));
        assert!(!s.try_claim(0));
        s.free(0);
        assert!(s.freed[0]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_caught() {
        let mut s = Shared::initial();
        s.faa(0, -2);
        s.faa(0, -2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_caught() {
        let mut s = Shared::initial();
        s.faa(0, -2);
        assert!(s.try_claim(0));
        s.free(0);
        s.free(0);
    }

    #[test]
    fn weak_claim_deposits_guard_and_finalizes_once() {
        let mut s = Shared::initial();
        s.faa_weak(0, 1); // a standing weak reference
        s.faa(0, -2);
        assert_eq!(s.try_claim_weak(0), Claim::DeadWeak);
        assert_eq!(s.weak[0], 2, "claim must deposit the guard");
        assert!(s.dead[0]);
        assert!(!s.maybe_finalize(0), "guard + weak still hold the header");
        s.faa_weak(0, -1); // guard drop
        assert!(!s.maybe_finalize(0), "the standing weak still holds");
        s.faa_weak(0, -1); // last weak drop
        assert!(s.maybe_finalize(0));
        assert!(!s.maybe_finalize(0), "finalize has exactly one winner");
        s.free(0);
    }

    #[test]
    fn upgrade_succeeds_iff_claim_bit_clear() {
        let mut s = Shared::initial();
        s.faa_weak(0, 1);
        assert!(s.try_upgrade(0), "strong count nonzero");
        s.faa(0, -2); // drop the minted reference
        s.faa(0, -2); // drain the link's count (pre-claim window)
        assert!(s.try_upgrade(0), "pre-claim revival is legal");
        s.faa(0, -2);
        assert_eq!(s.try_claim_weak(0), Claim::DeadWeak);
        assert!(!s.try_upgrade(0), "claim taken — dead stays dead");
    }

    #[test]
    #[should_panic(expected = "free of weak-held node")]
    fn free_under_weak_count_caught() {
        let mut s = Shared::initial();
        s.faa_weak(0, 1);
        s.faa(0, -2);
        let _ = s.try_claim_weak(0);
        s.free(0);
    }

    #[test]
    fn witness_tracks_link_history() {
        let mut s = Shared::initial();
        s.open_witness(0);
        assert!(s.link_cas(Some(0), Some(1)));
        s.close_witness(0, Some(1)); // ok: seen during window
        s.open_witness(0);
        s.close_witness(0, Some(1)); // ok: current value at open
    }

    #[test]
    #[should_panic(expected = "never held")]
    fn unwitnessed_return_caught() {
        let mut s = Shared::initial();
        assert!(s.link_cas(Some(0), Some(1)));
        s.open_witness(0); // window opens with link = Some(1)
        s.close_witness(0, Some(0)); // Some(0) never seen in window
    }
}
