//! The shared-memory model: the Figure 4 globals, small enough to
//! enumerate.

/// Threads in the model (the announcement matrices are `T × T`).
pub const MODEL_THREADS: usize = 2;
/// Nodes in the model arena.
pub const MODEL_NODES: usize = 2;

/// A node identifier (index into the model arena).
pub type NodeId = usize;

/// An announcement-slot word: the paper's `union LinkOrPointer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnnWord {
    /// ⊥ — empty or consumed.
    #[default]
    Empty,
    /// A published link announcement (the model has one link, so the
    /// address is implicit).
    Announced,
    /// A helper's answer.
    Answer(Option<NodeId>),
}

/// The entire shared state. `Clone + Eq + Hash` so the explorer can
/// memoize visited states.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shared {
    /// The single shared link under test.
    pub link: Option<NodeId>,
    /// `mm_ref` per node (raw convention: count = mm_ref / 2, odd = claimed).
    pub mm_ref: [i32; MODEL_NODES],
    /// Free set: node has been handed to `FreeNode`.
    pub freed: [bool; MODEL_NODES],
    /// `annReadAddr[t][i]`.
    pub ann_read: [[AnnWord; MODEL_THREADS]; MODEL_THREADS],
    /// `annIndex[t]`.
    pub ann_index: [usize; MODEL_THREADS],
    /// `annBusy[t][i]`.
    pub ann_busy: [[u8; MODEL_THREADS]; MODEL_THREADS],
    /// Ghost: per-thread witness sets — which link values each thread's
    /// *currently active* dereference has seen the link hold. Bit `n` set =
    /// value `Some(n)` occurred; bit `MODEL_NODES` = `None` occurred.
    pub witness: [u8; MODEL_THREADS],
    /// Ghost: whether each thread currently has an active top-level deref
    /// window (for witness maintenance).
    pub deref_active: [bool; MODEL_THREADS],
}

impl Shared {
    /// Initial state: `link = Some(node0)` holding one reference
    /// (`mm_ref = 2`); every other node starts with one thread-owned
    /// reference (`mm_ref = 2`) so scripts can CAS it in.
    pub fn initial() -> Self {
        let mut s = Self {
            link: Some(0),
            mm_ref: [2; MODEL_NODES],
            freed: [false; MODEL_NODES],
            ann_read: Default::default(),
            ann_index: [0; MODEL_THREADS],
            ann_busy: [[0; MODEL_THREADS]; MODEL_THREADS],
            witness: [0; MODEL_THREADS],
            deref_active: [false; MODEL_THREADS],
        };
        s.note_link_value();
        s
    }

    /// FAA on a node's `mm_ref`. Panics (= model violation) on underflow.
    pub fn faa(&mut self, n: NodeId, delta: i32) -> i32 {
        let old = self.mm_ref[n];
        self.mm_ref[n] += delta;
        assert!(
            self.mm_ref[n] >= 0,
            "mm_ref underflow on node {n}: {} + {delta}",
            old
        );
        old
    }

    /// The `ReleaseRef` R2 claim: `mm_ref == 0 && CAS(mm_ref, 0, 1)`.
    pub fn try_claim(&mut self, n: NodeId) -> bool {
        if self.mm_ref[n] == 0 {
            self.mm_ref[n] = 1;
            true
        } else {
            false
        }
    }

    /// `FreeNode` abstracted: move to the free set. Double-free is a model
    /// violation.
    ///
    /// The count need not be exactly 1: concurrent dereferences may have
    /// landed *spurious* `FAA(+2)`s on the node between the winning R2
    /// claim and this free — the paper's Lemma 3 argues each such count
    /// carries a pending `ReleaseRef` that will drain it. The claim bit
    /// (odd value) must be set, though.
    pub fn free(&mut self, n: NodeId) {
        assert!(!self.freed[n], "double free of node {n}");
        assert!(
            self.mm_ref[n] % 2 == 1,
            "free of unclaimed node {n} (mm_ref = {})",
            self.mm_ref[n]
        );
        self.freed[n] = true;
    }

    /// CAS on the link; records the new value into active witnesses.
    pub fn link_cas(&mut self, old: Option<NodeId>, new: Option<NodeId>) -> bool {
        if self.link == old {
            self.link = new;
            self.note_link_value();
            true
        } else {
            false
        }
    }

    /// Ghost: fold the current link value into every active deref witness.
    pub fn note_link_value(&mut self) {
        let bit = match self.link {
            Some(n) => 1u8 << n,
            None => 1u8 << MODEL_NODES,
        };
        for t in 0..MODEL_THREADS {
            if self.deref_active[t] {
                self.witness[t] |= bit;
            }
        }
    }

    /// Ghost: open thread `t`'s top-level deref window.
    pub fn open_witness(&mut self, t: usize) {
        self.deref_active[t] = true;
        self.witness[t] = 0;
        self.note_link_value();
    }

    /// Ghost: close the window and check the returned value was witnessed
    /// (Lemma 2: the dereference returns a value the link held during the
    /// operation).
    pub fn close_witness(&mut self, t: usize, returned: Option<NodeId>) {
        let bit = match returned {
            Some(n) => 1u8 << n,
            None => 1u8 << MODEL_NODES,
        };
        assert!(
            self.witness[t] & bit != 0,
            "thread {t} deref returned {returned:?}, never held by the link during the op \
             (witness mask {:#b})",
            self.witness[t]
        );
        self.deref_active[t] = false;
        self.witness[t] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_counts() {
        let s = Shared::initial();
        assert_eq!(s.link, Some(0));
        assert_eq!(s.mm_ref, [2, 2]);
        assert!(!s.freed.iter().any(|&f| f));
    }

    #[test]
    fn faa_and_claim() {
        let mut s = Shared::initial();
        s.faa(0, -2);
        assert!(s.try_claim(0));
        assert!(!s.try_claim(0));
        s.free(0);
        assert!(s.freed[0]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_caught() {
        let mut s = Shared::initial();
        s.faa(0, -2);
        s.faa(0, -2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_caught() {
        let mut s = Shared::initial();
        s.faa(0, -2);
        assert!(s.try_claim(0));
        s.free(0);
        s.free(0);
    }

    #[test]
    fn witness_tracks_link_history() {
        let mut s = Shared::initial();
        s.open_witness(0);
        assert!(s.link_cas(Some(0), Some(1)));
        s.close_witness(0, Some(1)); // ok: seen during window
        s.open_witness(0);
        s.close_witness(0, Some(1)); // ok: current value at open
    }

    #[test]
    #[should_panic(expected = "never held")]
    fn unwitnessed_return_caught() {
        let mut s = Shared::initial();
        assert!(s.link_cas(Some(0), Some(1)));
        s.open_witness(0); // window opens with link = Some(1)
        s.close_witness(0, Some(0)); // Some(0) never seen in window
    }
}
