//! Step machines for the Figure 4 / Figure 6 operations.
//!
//! Each machine executes a *script* of calls; every `step()` performs at
//! most one shared-memory access, so the explorer's interleavings are
//! exactly the sequentially-consistent executions of the pseudo-code.
//! Nested operations (`HelpDeRef` calling `DeRefLink` at H5, `DeRefLink`
//! calling `ReleaseRef` at D8) run as stacked frames.

use crate::shared::{AnnWord, Claim, NodeId, Shared, MODEL_THREADS};

/// Which dereference algorithm a script step uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DerefKind {
    /// The paper's Figure 4 `DeRefLink` (announce → read → FAA → retract).
    WaitFree,
    /// The naive dereference (read, FAA, return — no announcement, no
    /// re-check). This is the algorithm whose use-after-free the paper's
    /// §3 motivates; the explorer finds the bug (see the crate tests).
    Unsafe,
}

/// One script entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Call {
    /// Dereference the link; the result lands in the machine's result
    /// register.
    Deref(DerefKind),
    /// `ReleaseRef` on the last dereference result (no-op if it was null).
    ReleaseResult,
    /// `ReleaseRef` on a specific node.
    Release(NodeId),
    /// `FixRef(node, delta)` — one FAA.
    FixRef(NodeId, i32),
    /// Figure 6 `CompareAndSwapLink`: CAS, then `HelpDeRef` on success.
    /// The outcome lands in the machine's CAS flag.
    CasLink {
        /// Expected link value.
        old: Option<NodeId>,
        /// Replacement link value.
        new: Option<NodeId>,
    },
    /// `ReleaseRef(node)` if the last `CasLink` succeeded (the §3.2
    /// obligation on the old target).
    ReleaseIfCasOk(NodeId),
    /// `ReleaseRef(node)` if the last `CasLink` failed (undoing a
    /// speculative `FixRef`).
    ReleaseIfCasFailed(NodeId),
    /// Weak tier (PR 10): add one weak reference (the caller's script
    /// must hold a strong reference at this point — asserted).
    Downgrade(NodeId),
    /// The upgrade CAS; the outcome lands in the machine's upgrade flag.
    /// The caller's script must hold a weak reference.
    WeakUpgrade(NodeId),
    /// `ReleaseRef(node)` if the last `WeakUpgrade` succeeded (dropping
    /// the strong reference the upgrade minted).
    ReleaseIfUpgradeOk(NodeId),
    /// Drop one weak reference, finalizing (and freeing) a drained DEAD
    /// header if this was the last thing holding it.
    WeakRelease(NodeId),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Frame {
    Deref {
        kind: DerefKind,
        pc: u8,
        idx: usize,
        node: Option<NodeId>,
        answer: Option<NodeId>,
        top_level: bool,
    },
    Release {
        pc: u8,
        node: NodeId,
    },
    Help {
        pc: u8,
        id: usize,
        idx: usize,
        node: Option<NodeId>,
    },
    CasLink {
        pc: u8,
        old: Option<NodeId>,
        new: Option<NodeId>,
    },
    WeakRelease {
        pc: u8,
        node: NodeId,
    },
}

/// A thread: a script plus its execution state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Machine {
    tid: usize,
    script: Vec<Call>,
    ip: usize,
    stack: Vec<Frame>,
    /// Result register: last completed dereference.
    pub result: Option<NodeId>,
    /// Last `CasLink` outcome.
    pub cas_ok: bool,
    /// Last `WeakUpgrade` outcome.
    pub upgrade_ok: bool,
    /// Return slot from a just-popped child frame.
    ret: Option<Option<NodeId>>,
}

impl Machine {
    /// Creates a machine for thread `tid` running `script`.
    pub fn new(tid: usize, script: Vec<Call>) -> Self {
        assert!(tid < MODEL_THREADS);
        Self {
            tid,
            script,
            ip: 0,
            stack: Vec::new(),
            result: None,
            cas_ok: false,
            upgrade_ok: false,
            ret: None,
        }
    }

    /// True when the script has run to completion.
    pub fn done(&self) -> bool {
        self.stack.is_empty() && self.ip == self.script.len()
    }

    /// Executes one step (at most one shared-memory access).
    pub fn step(&mut self, s: &mut Shared) {
        debug_assert!(!self.done());
        if self.stack.is_empty() {
            let call = self.script[self.ip];
            self.ip += 1;
            match call {
                Call::Deref(kind) => {
                    s.open_witness(self.tid);
                    self.stack.push(Frame::Deref {
                        kind,
                        pc: 0,
                        idx: 0,
                        node: None,
                        answer: None,
                        top_level: true,
                    });
                }
                Call::ReleaseResult => {
                    if let Some(n) = self.result {
                        self.stack.push(Frame::Release { pc: 0, node: n });
                    }
                }
                Call::Release(n) => self.stack.push(Frame::Release { pc: 0, node: n }),
                Call::FixRef(n, d) => {
                    s.faa(n, d);
                }
                Call::CasLink { old, new } => self.stack.push(Frame::CasLink { pc: 0, old, new }),
                Call::ReleaseIfCasOk(n) => {
                    if self.cas_ok {
                        self.stack.push(Frame::Release { pc: 0, node: n });
                    }
                }
                Call::ReleaseIfCasFailed(n) => {
                    if !self.cas_ok {
                        self.stack.push(Frame::Release { pc: 0, node: n });
                    }
                }
                Call::Downgrade(n) => {
                    // The script contract mirrors `downgrade_raw`'s safety
                    // clause: a strong reference must be held.
                    assert!(
                        s.mm_ref[n] >= 2 && s.mm_ref[n] % 2 == 0,
                        "downgrade of node {n} without a live strong count (mm_ref = {})",
                        s.mm_ref[n]
                    );
                    s.faa_weak(n, 1);
                }
                Call::WeakUpgrade(n) => {
                    self.upgrade_ok = s.try_upgrade(n);
                }
                Call::ReleaseIfUpgradeOk(n) => {
                    if self.upgrade_ok {
                        self.stack.push(Frame::Release { pc: 0, node: n });
                    }
                }
                Call::WeakRelease(n) => self.stack.push(Frame::WeakRelease { pc: 0, node: n }),
            }
            return;
        }
        self.step_frame(s);
    }

    fn step_frame(&mut self, s: &mut Shared) {
        let tid = self.tid;
        let top = self.stack.len() - 1;
        // Take the frame out to sidestep borrow gymnastics; push back if
        // it survives the step.
        let mut frame = self.stack.pop().expect("stack non-empty");
        match &mut frame {
            Frame::Deref {
                kind: DerefKind::WaitFree,
                pc,
                idx,
                node,
                answer,
                top_level,
            } => match *pc {
                0 => {
                    // D1: choose a slot with busy == 0 (bounded scan).
                    *idx = (0..MODEL_THREADS)
                        .find(|&i| s.ann_busy[tid][i] == 0)
                        .expect("announcement protocol violated: all slots busy");
                    *pc = 1;
                    self.stack.push(frame);
                }
                1 => {
                    s.ann_index[tid] = *idx; // D2
                    *pc = 2;
                    self.stack.push(frame);
                }
                2 => {
                    s.ann_read[tid][*idx] = AnnWord::Announced; // D3
                    *pc = 3;
                    self.stack.push(frame);
                }
                3 => {
                    *node = s.link; // D4
                    *pc = 4;
                    self.stack.push(frame);
                }
                4 => {
                    if let Some(n) = *node {
                        s.faa(n, 2); // D5
                    }
                    *pc = 5;
                    self.stack.push(frame);
                }
                5 => {
                    // D6: retract and inspect.
                    let word = std::mem::replace(&mut s.ann_read[tid][*idx], AnnWord::Empty);
                    match word {
                        AnnWord::Announced => {
                            // Not helped: return `node`.
                            let tl = *top_level;
                            let ret = *node;
                            self.finish_deref(s, ret, tl);
                        }
                        AnnWord::Answer(ans) => {
                            // D7–D9: helped; release the speculative count.
                            *answer = ans;
                            *pc = 6;
                            let spec = *node;
                            self.stack.push(frame);
                            if let Some(n) = spec {
                                self.stack.push(Frame::Release { pc: 0, node: n });
                            }
                        }
                        AnnWord::Empty => {
                            unreachable!("announcement vanished without answer")
                        }
                    }
                }
                6 => {
                    // Release child (if any) has completed: return answer.
                    let tl = *top_level;
                    let ans = *answer;
                    self.finish_deref(s, ans, tl);
                }
                _ => unreachable!(),
            },
            Frame::Deref {
                kind: DerefKind::Unsafe,
                pc,
                node,
                top_level,
                ..
            } => match *pc {
                0 => {
                    *node = s.link; // naive read
                    *pc = 1;
                    self.stack.push(frame);
                }
                1 => {
                    if let Some(n) = *node {
                        s.faa(n, 2); // naive increment, no re-check
                    }
                    let tl = *top_level;
                    let ret = *node;
                    self.finish_deref(s, ret, tl);
                }
                _ => unreachable!(),
            },
            Frame::Release { pc, node } => match *pc {
                0 => {
                    s.faa(*node, -2); // R1
                    *pc = 1;
                    self.stack.push(frame);
                }
                1 => {
                    // R2, weak-aware (PR 10): one CAS over the packed word.
                    match s.try_claim_weak(*node) {
                        Claim::Busy => {
                            // A speculative count may be exposing a
                            // drained DEAD sentinel: the releaser that
                            // uncovers it inherits the free.
                            *pc = 4;
                            self.stack.push(frame);
                        }
                        Claim::Free => {
                            // R4 next (no child links in the model).
                            *pc = 2;
                            self.stack.push(frame);
                        }
                        Claim::DeadWeak => {
                            // Strip done (no links); drop the guard.
                            *pc = 3;
                            self.stack.push(frame);
                        }
                    }
                }
                2 => {
                    s.free(*node); // R4
                }
                3 => {
                    // The DeadWeak guard drop: one FAA, then the finalize
                    // CAS as its own access.
                    s.faa_weak(*node, -1);
                    *pc = 4;
                    self.stack.push(frame);
                }
                4 => {
                    if s.maybe_finalize(*node) {
                        *pc = 2;
                        self.stack.push(frame);
                    }
                    // else: pop (someone else still holds the header).
                }
                _ => unreachable!(),
            },
            Frame::Help { pc, id, idx, node } => match *pc {
                0 => {
                    if *id == MODEL_THREADS {
                        // H1 loop exhausted.
                    } else {
                        *idx = s.ann_index[*id]; // H2
                        *pc = 1;
                        self.stack.push(frame);
                    }
                }
                1 => {
                    // H3: does the slot announce our (single) link?
                    // (A separate step from H4 — the helper may stall in
                    // this window, which is exactly the race the busy
                    // counters defend; the explorer must see it.)
                    if s.ann_read[*id][*idx] == AnnWord::Announced {
                        *pc = 2;
                    } else {
                        *id += 1;
                        *pc = 0;
                    }
                    self.stack.push(frame);
                }
                2 => {
                    s.ann_busy[*id][*idx] += 1; // H4: pin the slot
                    *pc = 3;
                    self.stack.push(frame);
                    // H5: nested DeRefLink with our own slots.
                    self.stack.push(Frame::Deref {
                        kind: DerefKind::WaitFree,
                        pc: 0,
                        idx: 0,
                        node: None,
                        answer: None,
                        top_level: false,
                    });
                }
                3 => {
                    // H5 child returned; H6: try to answer.
                    *node = self.ret.take().expect("nested deref must return");
                    let answered = if s.ann_read[*id][*idx] == AnnWord::Announced {
                        s.ann_read[*id][*idx] = AnnWord::Answer(*node);
                        true
                    } else {
                        false
                    };
                    *pc = 4;
                    let n = *node;
                    self.stack.push(frame);
                    if !answered {
                        // H7: our reference wasn't transferred; release it.
                        if let Some(n) = n {
                            self.stack.push(Frame::Release { pc: 0, node: n });
                        }
                    }
                }
                4 => {
                    s.ann_busy[*id][*idx] -= 1; // H8
                    *id += 1;
                    *pc = 0;
                    self.stack.push(frame);
                }
                _ => unreachable!(),
            },
            Frame::CasLink { pc, old, new } => match *pc {
                0 => {
                    self.cas_ok = s.link_cas(*old, *new);
                    if self.cas_ok {
                        *pc = 1;
                        self.stack.push(frame);
                        // Figure 6: HelpDeRef after a successful CAS.
                        self.stack.push(Frame::Help {
                            pc: 0,
                            id: 0,
                            idx: 0,
                            node: None,
                        });
                    }
                    // On failure: pop, cas_ok = false.
                }
                1 => {
                    // Help child done; pop.
                }
                _ => unreachable!(),
            },
            Frame::WeakRelease { pc, node } => match *pc {
                0 => {
                    s.faa_weak(*node, -1);
                    *pc = 1;
                    self.stack.push(frame);
                }
                1 => {
                    if s.maybe_finalize(*node) {
                        *pc = 2;
                        self.stack.push(frame);
                    }
                    // else: pop (header still strong- or weak-held).
                }
                2 => {
                    s.free(*node);
                }
                _ => unreachable!(),
            },
        }
        debug_assert!(self.stack.len() <= top + 2);
    }

    /// Completes a dereference frame: safety + linearizability checks,
    /// then routes the return value to the parent.
    fn finish_deref(&mut self, s: &mut Shared, ret: Option<NodeId>, top_level: bool) {
        if let Some(n) = ret {
            assert!(
                !s.freed[n],
                "use-after-free: thread {} dereference returned node {n}, \
                 which is in the free set at return time",
                self.tid
            );
        }
        if top_level {
            s.close_witness(self.tid, ret);
            self.result = ret;
        } else {
            self.ret = Some(ret);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_completion(mut m: Machine, s: &mut Shared) -> Machine {
        let mut steps = 0;
        while !m.done() {
            m.step(s);
            steps += 1;
            assert!(steps < 10_000, "machine diverged");
        }
        m
    }

    #[test]
    fn solo_deref_returns_link_target() {
        let mut s = Shared::initial();
        let m = Machine::new(
            0,
            vec![Call::Deref(DerefKind::WaitFree), Call::ReleaseResult],
        );
        let m = run_to_completion(m, &mut s);
        assert_eq!(m.result, Some(0));
        assert_eq!(s.mm_ref, [2, 2], "deref+release is count-neutral");
    }

    #[test]
    fn solo_cas_and_release_frees_old() {
        let mut s = Shared::initial();
        // T: FixRef(b,+2) for the link; CAS a->b; release link's old count
        // on a; release own count on a?? — the model's initial state gives
        // the *link* the count on a, so one release suffices; then drop own
        // b reference.
        let m = Machine::new(
            0,
            vec![
                Call::FixRef(1, 2),
                Call::CasLink {
                    old: Some(0),
                    new: Some(1),
                },
                Call::ReleaseIfCasOk(0),
                Call::ReleaseIfCasFailed(1),
            ],
        );
        let m = run_to_completion(m, &mut s);
        assert!(m.cas_ok);
        assert_eq!(s.link, Some(1));
        assert_eq!(s.mm_ref[0], 1, "a reclaimed");
        assert!(s.freed[0]);
        assert_eq!(s.mm_ref[1], 4, "b: link count + owner count");
        assert!(!s.freed[1]);
    }

    #[test]
    fn solo_unsafe_deref_matches_on_quiet_link() {
        let mut s = Shared::initial();
        let m = Machine::new(0, vec![Call::Deref(DerefKind::Unsafe), Call::ReleaseResult]);
        let m = run_to_completion(m, &mut s);
        assert_eq!(m.result, Some(0));
        assert_eq!(s.mm_ref, [2, 2]);
    }

    #[test]
    fn machines_are_hashable_for_memoization() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        let m = Machine::new(0, vec![Call::Deref(DerefKind::WaitFree)]);
        set.insert(m.clone());
        assert!(set.contains(&m));
    }
}
