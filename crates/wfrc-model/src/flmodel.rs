//! Model of the wait-free free-list (Figure 5): `AllocNode` / `FreeNode`
//! with the round-robin gifting protocol, explored exhaustively.
//!
//! Complements [`crate::machine`] (which models the Figure 4 announcement
//! protocol): here the checked properties are the paper's Lemmas 4, 5, 9
//! and 10 on a two-thread, small-arena configuration:
//!
//! * **Conservation** — at quiescence every node is in exactly one place:
//!   on some free-list, parked in an `annAlloc` slot, or owned by a
//!   script (ghost-tracked), with exactly the `mm_ref` its location
//!   dictates (1 / 3 / 2).
//! * **No loss, no duplication** — two concurrent allocations never
//!   return the same node; a node freed concurrently with allocations is
//!   never lost.
//! * **Bounded steps** — every operation completes within a fixed step
//!   budget in *every* explored schedule (the mechanized form of the
//!   wait-freedom lemmas at this configuration size; a livelocking
//!   protocol would exceed the budget on some schedule, or recurse
//!   forever and overflow the DFS).
//!
//! The corrected F3 (`FixRef(+2)` before the gifting CAS — see
//! `wfrc-core/src/freelist.rs`) is modeled as implemented; the test
//! `uncorrected_f3_is_caught` models the *paper's literal* F3 and shows
//! the conservation check failing — evidence the correction is necessary,
//! not stylistic.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::explore::Violation;

/// Threads in the free-list model.
pub const FL_THREADS: usize = 2;
/// Nodes in the free-list model arena. Three, not two: one may be parked
/// as a gift for a thread that never allocates again, one may be held by a
/// script, and the third keeps every allocation completable (the protocol's
/// wait-freedom is conditional on nodes being *available* — a gift parked
/// for thread X is unavailable to thread Y, exactly as in the paper).
pub const FL_NODES: usize = 3;
/// Free lists (`2 · NR_THREADS`).
pub const FL_LISTS: usize = 2 * FL_THREADS;
/// Per-operation step budget: generous versus the Lemma 9 bound for this
/// configuration; exceeding it in any schedule is a wait-freedom
/// violation.
pub const STEP_BUDGET: u32 = 120;

/// Shared state of the Figure 5 globals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlShared {
    /// `mm_ref` per node.
    pub mm_ref: [i32; FL_NODES],
    /// `mm_next` per node (arena index or None).
    pub next: [Option<usize>; FL_NODES],
    /// `freeList[..]` heads.
    pub heads: [Option<usize>; FL_LISTS],
    /// `currentFreeList`.
    pub current: usize,
    /// `helpCurrent`.
    pub help_current: usize,
    /// `annAlloc[t]`.
    pub ann_alloc: [Option<usize>; FL_THREADS],
}

impl FlShared {
    /// All nodes chained on list 0, `mm_ref = 1` (the paper's initial
    /// condition).
    pub fn initial() -> Self {
        let mut next = [None; FL_NODES];
        for (i, n) in next.iter_mut().enumerate().take(FL_NODES - 1) {
            *n = Some(i + 1);
        }
        Self {
            mm_ref: [1; FL_NODES],
            next,
            heads: {
                let mut h = [None; FL_LISTS];
                h[0] = Some(0);
                h
            },
            current: 0,
            help_current: 0,
            ann_alloc: [None; FL_THREADS],
        }
    }

    fn faa(&mut self, n: usize, d: i32) {
        self.mm_ref[n] += d;
        assert!(self.mm_ref[n] >= 0, "mm_ref underflow on node {n}");
    }
}

/// Program counter states of the alloc/free machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    /// `AllocNode` (paper A1–A18); result recorded in `owned`.
    Alloc {
        pc: u8,
        helped: bool,
        help_id: usize,
        cur: usize,
        node: usize,
        nxt: Option<usize>,
    },
    /// `FreeNode` of an owned node (the script first releases its count:
    /// the model folds `ReleaseRef`'s R1/R2 into pc 0/1).
    Free {
        pc: u8,
        node: usize,
        help_id: usize,
        index: usize,
        /// Model the paper's uncorrected F3 (for the counterexample test).
        corrected: bool,
        /// When the free is the R4 of a failed-A10 release (alloc line
        /// A18), the alloc loop resumes here afterwards.
        resume: Option<(bool, usize)>,
    },
    Done,
}

/// A thread running a script of alloc/free calls.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlMachine {
    tid: usize,
    /// true = alloc, false = free the most recently allocated node.
    script: Vec<bool>,
    ip: usize,
    op: Op,
    /// Ghost: nodes currently owned by this thread (allocated, unreleased).
    pub owned: Vec<usize>,
    steps_this_op: u32,
    /// Use the corrected F3 (default true).
    corrected_f3: bool,
}

impl FlMachine {
    /// Creates a machine; script entries: `true` = `AllocNode`, `false` =
    /// release + `FreeNode` of the most recent allocation.
    pub fn new(tid: usize, script: Vec<bool>) -> Self {
        Self {
            tid,
            script,
            ip: 0,
            op: Op::Done,
            owned: Vec::new(),
            steps_this_op: 0,
            corrected_f3: true,
        }
    }

    /// Switches to the paper's literal (uncorrected) F3.
    pub fn with_uncorrected_f3(mut self) -> Self {
        self.corrected_f3 = false;
        self
    }

    /// True when the script has completed.
    pub fn done(&self) -> bool {
        matches!(self.op, Op::Done) && self.ip == self.script.len()
    }

    /// One step (≤ one shared access).
    pub fn step(&mut self, s: &mut FlShared) {
        debug_assert!(!self.done());
        if matches!(self.op, Op::Done) {
            let is_alloc = self.script[self.ip];
            self.ip += 1;
            self.steps_this_op = 0;
            self.op = if is_alloc {
                Op::Alloc {
                    pc: 0,
                    helped: false,
                    help_id: 0,
                    cur: 0,
                    node: 0,
                    nxt: None,
                }
            } else {
                let node = self.owned.pop().expect("script frees an owned node");
                Op::Free {
                    pc: 0,
                    node,
                    help_id: 0,
                    index: 0,
                    corrected: self.corrected_f3,
                    resume: None,
                }
            };
            return;
        }
        self.steps_this_op += 1;
        assert!(
            self.steps_this_op <= STEP_BUDGET,
            "thread {} exceeded the wait-freedom step budget in {:?}",
            self.tid,
            self.op
        );
        self.op = self.advance(s);
    }

    /// Completes a FreeNode: return to the interrupted alloc loop (A18
    /// path) or finish the script op.
    fn finish_free(resume: Option<(bool, usize)>) -> Op {
        match resume {
            Some((helped, help_id)) => Op::Alloc {
                pc: 1,
                helped,
                help_id,
                cur: 0,
                node: 0,
                nxt: None,
            },
            None => Op::Done,
        }
    }

    fn advance(&mut self, s: &mut FlShared) -> Op {
        let tid = self.tid;
        match self.op {
            Op::Alloc {
                pc,
                helped,
                help_id,
                cur,
                node,
                nxt,
            } => match pc {
                0 => {
                    // A2: read helpCurrent.
                    Op::Alloc {
                        pc: 1,
                        helped,
                        help_id: s.help_current,
                        cur,
                        node,
                        nxt,
                    }
                }
                1 => {
                    // A4: SWAP annAlloc[tid].
                    if let Some(gift) = s.ann_alloc[tid].take() {
                        // FixRef(gift, -1): 3 -> 2, recorded as owned.
                        s.faa(gift, -1);
                        self.owned.push(gift);
                        return Op::Done;
                    }
                    Op::Alloc {
                        pc: 2,
                        helped,
                        help_id,
                        cur,
                        node,
                        nxt,
                    }
                }
                2 => {
                    // A5: read currentFreeList.
                    Op::Alloc {
                        pc: 3,
                        helped,
                        help_id,
                        cur: s.current,
                        node,
                        nxt,
                    }
                }
                3 => {
                    // A6/A7: read head; advance stripe if empty.
                    match s.heads[cur] {
                        None => {
                            if s.current == cur {
                                s.current = (cur + 1) % FL_LISTS; // A7 CAS
                            }
                            Op::Alloc {
                                pc: 1,
                                helped,
                                help_id,
                                cur,
                                node,
                                nxt,
                            }
                        }
                        Some(n) => Op::Alloc {
                            pc: 4,
                            helped,
                            help_id,
                            cur,
                            node: n,
                            nxt,
                        },
                    }
                }
                4 => {
                    // A9: pin.
                    s.faa(node, 2);
                    Op::Alloc {
                        pc: 5,
                        helped,
                        help_id,
                        cur,
                        node,
                        nxt,
                    }
                }
                5 => {
                    // read node.mm_next (safe: pinned).
                    Op::Alloc {
                        pc: 6,
                        helped,
                        help_id,
                        cur,
                        node,
                        nxt: s.next[node],
                    }
                }
                6 => {
                    // A10: CAS head.
                    if s.heads[cur] == Some(node) {
                        s.heads[cur] = nxt;
                        Op::Alloc {
                            pc: 7,
                            helped,
                            help_id,
                            cur,
                            node,
                            nxt,
                        }
                    } else {
                        // A18: ReleaseRef(node) — R1 here, R2 next step.
                        s.faa(node, -2);
                        Op::Alloc {
                            pc: 10,
                            helped,
                            help_id,
                            cur,
                            node,
                            nxt,
                        }
                    }
                }
                7 => {
                    // A11: read annAlloc[helpId].
                    if !helped && s.ann_alloc[help_id].is_none() {
                        Op::Alloc {
                            pc: 8,
                            helped,
                            help_id,
                            cur,
                            node,
                            nxt,
                        }
                    } else {
                        Op::Alloc {
                            pc: 9,
                            helped,
                            help_id,
                            cur,
                            node,
                            nxt,
                        }
                    }
                }
                8 => {
                    // A12: CAS annAlloc[helpId] ⊥ -> node.
                    if s.ann_alloc[help_id].is_none() {
                        s.ann_alloc[help_id] = Some(node);
                        // A13/A14: helped := true; advance helpCurrent.
                        if s.help_current == help_id {
                            s.help_current = (help_id + 1) % FL_THREADS;
                        }
                        Op::Alloc {
                            pc: 1, // A15: continue
                            helped: true,
                            help_id,
                            cur,
                            node,
                            nxt,
                        }
                    } else {
                        Op::Alloc {
                            pc: 9,
                            helped,
                            help_id,
                            cur,
                            node,
                            nxt,
                        }
                    }
                }
                9 => {
                    // A16/A17: advance helpCurrent; FixRef(node, -1).
                    if s.help_current == help_id {
                        s.help_current = (help_id + 1) % FL_THREADS;
                    }
                    s.faa(node, -1);
                    self.owned.push(node);
                    Op::Done
                }
                10 => {
                    // A18 continued: R2 claim check. If the count hit zero
                    // (the winner's user already released), *we* reclaim:
                    // run FreeNode (entering past R1/R2) and then resume
                    // the allocation loop — Lemma 3's hand-off.
                    if s.mm_ref[node] == 0 {
                        s.mm_ref[node] = 1;
                        Op::Free {
                            pc: 2,
                            node,
                            help_id: 0,
                            index: 0,
                            corrected: self.corrected_f3,
                            resume: Some((helped, help_id)),
                        }
                    } else {
                        Op::Alloc {
                            pc: 1,
                            helped,
                            help_id,
                            cur,
                            node,
                            nxt,
                        }
                    }
                }
                _ => unreachable!(),
            },
            Op::Free {
                pc,
                node,
                help_id,
                index,
                corrected,
                resume,
            } => match pc {
                0 => {
                    // ReleaseRef R1 on our own count.
                    s.faa(node, -2);
                    Op::Free {
                        pc: 1,
                        node,
                        help_id,
                        index,
                        corrected,
                        resume,
                    }
                }
                1 => {
                    // R2: claim. A concurrent allocator's stale A9 pin can
                    // make the count non-zero here; then *its* A18 release
                    // reclaims instead (Lemma 3's hand-off) and this free
                    // is complete.
                    if s.mm_ref[node] != 0 {
                        return Self::finish_free(resume);
                    }
                    s.mm_ref[node] = 1;
                    Op::Free {
                        pc: 2,
                        node,
                        help_id,
                        index,
                        corrected,
                        resume,
                    }
                }
                2 => {
                    // F1: read helpCurrent.
                    Op::Free {
                        pc: 3,
                        node,
                        help_id: s.help_current,
                        index,
                        corrected,
                        resume,
                    }
                }
                3 => {
                    // F2: advance helpCurrent.
                    if s.help_current == help_id {
                        s.help_current = (help_id + 1) % FL_THREADS;
                    }
                    Op::Free {
                        pc: 4,
                        node,
                        help_id,
                        index,
                        corrected,
                        resume,
                    }
                }
                4 => {
                    // F3 (corrected: FixRef +2 first).
                    if corrected {
                        s.faa(node, 2);
                    }
                    Op::Free {
                        pc: 5,
                        node,
                        help_id,
                        index,
                        corrected,
                        resume,
                    }
                }
                5 => {
                    // F3 CAS annAlloc[helpId] ⊥ -> node.
                    if s.ann_alloc[help_id].is_none() {
                        s.ann_alloc[help_id] = Some(node);
                        return Self::finish_free(resume);
                    }
                    if corrected {
                        s.faa(node, -2);
                    }
                    Op::Free {
                        pc: 6,
                        node,
                        help_id,
                        index,
                        corrected,
                        resume,
                    }
                }
                6 => {
                    // F4–F6: pick the stripe away from the allocators.
                    let cur = s.current;
                    let index = if cur <= self.tid || cur > FL_THREADS + self.tid {
                        FL_THREADS + self.tid
                    } else {
                        self.tid
                    };
                    Op::Free {
                        pc: 7,
                        node,
                        help_id,
                        index,
                        corrected,
                        resume,
                    }
                }
                7 => {
                    // F8: node.mm_next := head (own node, but head read is
                    // shared).
                    s.next[node] = s.heads[index];
                    Op::Free {
                        pc: 8,
                        node,
                        help_id,
                        index,
                        corrected,
                        resume,
                    }
                }
                8 => {
                    // F9: CAS head.
                    if s.heads[index] == s.next[node] {
                        s.heads[index] = Some(node);
                        Self::finish_free(resume)
                    } else {
                        // F10: the other stripe.
                        Op::Free {
                            pc: 7,
                            node,
                            help_id,
                            index: (index + FL_THREADS) % FL_LISTS,
                            corrected,
                            resume,
                        }
                    }
                }
                _ => unreachable!(),
            },
            Op::Done => unreachable!(),
        }
    }
}

/// Conservation invariant at quiescence: every node in exactly one place
/// with the right count.
pub fn check_conservation(s: &FlShared, machines: &[FlMachine]) {
    let mut seen = [0u32; FL_NODES];
    // Free lists.
    for (li, mut head) in s.heads.iter().copied().enumerate() {
        let mut hops = 0;
        while let Some(n) = head {
            seen[n] += 1;
            assert_eq!(
                s.mm_ref[n], 1,
                "node {n} on free list {li} must have mm_ref 1: {s:?}"
            );
            head = s.next[n];
            hops += 1;
            assert!(hops <= FL_NODES, "free-list cycle: {s:?}");
        }
    }
    // Parked gifts.
    for t in 0..FL_THREADS {
        if let Some(n) = s.ann_alloc[t] {
            seen[n] += 1;
            assert_eq!(
                s.mm_ref[n], 3,
                "gift {n} in annAlloc[{t}] must have mm_ref 3: {s:?}"
            );
        }
    }
    // Script-owned.
    for m in machines {
        for &n in &m.owned {
            seen[n] += 1;
            assert_eq!(s.mm_ref[n], 2, "owned node {n} must have mm_ref 2: {s:?}");
        }
    }
    for (n, &count) in seen.iter().enumerate() {
        assert_eq!(
            count, 1,
            "node {n} is in {count} places at quiescence: {s:?} {machines:?}"
        );
    }
}

/// Exhaustive DFS, mirroring [`crate::explore::explore`] for the
/// free-list machines.
pub fn explore_fl(
    initial: FlShared,
    machines: Vec<FlMachine>,
    check_final: impl Fn(&FlShared, &[FlMachine]) + Copy,
) -> crate::explore::ExploreResult {
    let mut visited: HashSet<(FlShared, Vec<FlMachine>)> = HashSet::new();
    let mut finals: HashSet<(FlShared, Vec<FlMachine>)> = HashSet::new();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        dfs(initial, machines, &mut visited, &mut finals, &check_final);
    }));
    crate::explore::ExploreResult {
        states: visited.len(),
        final_states: finals.len(),
        violation: outcome.err().map(|e| {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            Violation(msg)
        }),
    }
}

fn dfs(
    shared: FlShared,
    machines: Vec<FlMachine>,
    visited: &mut HashSet<(FlShared, Vec<FlMachine>)>,
    finals: &mut HashSet<(FlShared, Vec<FlMachine>)>,
    check_final: &impl Fn(&FlShared, &[FlMachine]),
) {
    if !visited.insert((shared.clone(), machines.clone())) {
        return;
    }
    let runnable: Vec<usize> = (0..machines.len())
        .filter(|&i| !machines[i].done())
        .collect();
    if runnable.is_empty() {
        if finals.insert((shared.clone(), machines.clone())) {
            check_final(&shared, &machines);
        }
        return;
    }
    for i in runnable {
        let mut s2 = shared.clone();
        let mut m2 = machines.clone();
        m2[i].step(&mut s2);
        dfs(s2, m2, visited, finals, check_final);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_alloc_free_roundtrip() {
        let mut s = FlShared::initial();
        let mut m = FlMachine::new(0, vec![true, false]);
        let mut steps = 0;
        while !m.done() {
            m.step(&mut s);
            steps += 1;
            assert!(steps < 1000);
        }
        check_conservation(&s, &[m]);
    }

    #[test]
    fn concurrent_allocs_get_distinct_nodes() {
        let r = explore_fl(
            FlShared::initial(),
            vec![FlMachine::new(0, vec![true]), FlMachine::new(1, vec![true])],
            |s, ms| {
                check_conservation(s, ms);
                // Both allocations must have succeeded with distinct nodes.
                assert_eq!(ms[0].owned.len(), 1);
                assert_eq!(ms[1].owned.len(), 1);
                assert_ne!(ms[0].owned[0], ms[1].owned[0], "duplicate allocation");
            },
        );
        assert!(r.violation.is_none(), "{:?}", r.violation);
        println!("2x alloc: {} states, {} finals", r.states, r.final_states);
        assert!(r.states > 50);
    }

    #[test]
    fn alloc_free_churn_conserves() {
        let r = explore_fl(
            FlShared::initial(),
            vec![
                FlMachine::new(0, vec![true, false]),
                FlMachine::new(1, vec![true, false]),
            ],
            check_conservation,
        );
        assert!(r.violation.is_none(), "{:?}", r.violation);
        println!(
            "churn: {} states, {} finals (all conserve)",
            r.states, r.final_states
        );
    }

    #[test]
    fn gifting_races_conserve() {
        // T0 allocates twice (will drain the gift the freeing thread may
        // park); T1 allocates and frees.
        let r = explore_fl(
            FlShared::initial(),
            vec![
                FlMachine::new(0, vec![true, false, true, false]),
                FlMachine::new(1, vec![true, false]),
            ],
            check_conservation,
        );
        assert!(r.violation.is_none(), "{:?}", r.violation);
        println!("gift races: {} states", r.states);
    }

    #[test]
    fn uncorrected_f3_is_caught() {
        // The paper's literal F3 gifts with mm_ref = 1; the recipient's
        // FixRef(-1) yields a live node with count 0 — conservation must
        // fail in some schedule.
        let r = explore_fl(
            FlShared::initial(),
            vec![
                // T0 churns so its A4 picks up T1's gift.
                FlMachine::new(0, vec![true, false, true, false]),
                FlMachine::new(1, vec![true, false]).with_uncorrected_f3(),
            ],
            check_conservation,
        );
        let v = r
            .violation
            .expect("the paper's uncorrected F3 must break count conservation");
        println!("uncorrected F3 violation: {}", v.0);
    }
}
