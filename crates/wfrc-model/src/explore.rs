//! The exhaustive scheduler: depth-first search over all interleavings of
//! two machines, with visited-state memoization.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::machine::Machine;
use crate::shared::Shared;

/// A detected protocol violation (the message of the failed model
/// assertion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

/// Outcome of an exploration.
#[derive(Debug)]
pub struct ExploreResult {
    /// Distinct `(shared, machines)` states visited.
    pub states: usize,
    /// Distinct final (quiescent) states reached.
    pub final_states: usize,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
}

/// Explores every interleaving of `machines` starting from `initial`,
/// running `check_final` on every quiescent state. Model assertions
/// (use-after-free, double free, underflow, linearizability witnesses) and
/// `check_final` panics are reported as [`Violation`]s.
pub fn explore(
    initial: Shared,
    machines: Vec<Machine>,
    check_final: impl Fn(&Shared, &[Machine]) + Copy,
) -> ExploreResult {
    let mut visited: HashSet<(Shared, Vec<Machine>)> = HashSet::new();
    let mut finals: HashSet<Shared> = HashSet::new();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        dfs(initial, machines, &mut visited, &mut finals, &check_final);
    }));
    ExploreResult {
        states: visited.len(),
        final_states: finals.len(),
        violation: outcome.err().map(|e| {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            Violation(msg)
        }),
    }
}

fn dfs(
    shared: Shared,
    machines: Vec<Machine>,
    visited: &mut HashSet<(Shared, Vec<Machine>)>,
    finals: &mut HashSet<Shared>,
    check_final: &impl Fn(&Shared, &[Machine]),
) {
    if !visited.insert((shared.clone(), machines.clone())) {
        return;
    }
    let runnable: Vec<usize> = (0..machines.len())
        .filter(|&i| !machines[i].done())
        .collect();
    if runnable.is_empty() {
        if finals.insert(shared.clone()) {
            check_final(&shared, &machines);
        }
        return;
    }
    for i in runnable {
        let mut s2 = shared.clone();
        let mut m2 = machines.clone();
        m2[i].step(&mut s2);
        dfs(s2, m2, visited, finals, check_final);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Call, DerefKind};
    use crate::shared::MODEL_NODES;

    /// Script: thread 1 swings the link from node 0 to node 1 and frees the
    /// old target; thread 0 dereferences concurrently.
    fn swing_scripts(kind: DerefKind) -> Vec<Machine> {
        vec![
            Machine::new(0, vec![Call::Deref(kind), Call::ReleaseResult]),
            Machine::new(
                1,
                vec![
                    Call::FixRef(1, 2), // link's count on the new target
                    Call::CasLink {
                        old: Some(0),
                        new: Some(1),
                    },
                    Call::ReleaseIfCasOk(0),     // the link's old count
                    Call::ReleaseIfCasFailed(1), // undo the speculation
                    Call::Release(1),            // drop own reference on b
                ],
            ),
        ]
    }

    fn final_check(s: &Shared, ms: &[Machine]) {
        // T1's CAS is the only link write and T0 never writes, so the CAS
        // must have succeeded in every execution.
        assert!(ms[1].cas_ok, "CAS cannot fail in this scenario");
        assert_eq!(s.link, Some(1));
        // Node 0: unlinked, fully released -> must be reclaimed.
        assert!(s.freed[0], "old target must be reclaimed: {s:?}");
        assert_eq!(s.mm_ref[0], 1);
        // Node 1: held only by the link.
        assert!(!s.freed[1]);
        assert_eq!(s.mm_ref[1], 2, "{s:?}");
        // T0's result must have been node 0, node 1 — never garbage (the
        // use-after-free assertion fired inside the machines if so).
        assert!(ms[0].result == Some(0) || ms[0].result == Some(1));
        // No announcement residue.
        for t in 0..crate::shared::MODEL_THREADS {
            for i in 0..crate::shared::MODEL_THREADS {
                assert_eq!(s.ann_busy[t][i], 0);
                assert_eq!(s.ann_read[t][i], crate::shared::AnnWord::Empty);
            }
        }
        let _ = MODEL_NODES;
    }

    #[test]
    fn wait_free_deref_survives_every_interleaving() {
        let r = explore(
            Shared::initial(),
            swing_scripts(DerefKind::WaitFree),
            final_check,
        );
        assert!(
            r.violation.is_none(),
            "wait-free protocol violated: {:?}",
            r.violation
        );
        assert!(r.states > 100, "exploration too small: {} states", r.states);
        println!(
            "wait-free swing: {} states, {} finals",
            r.states, r.final_states
        );
    }

    #[test]
    fn naive_deref_is_caught() {
        let r = explore(
            Shared::initial(),
            swing_scripts(DerefKind::Unsafe),
            |_, _| {},
        );
        let v = r
            .violation
            .expect("the naive dereference must exhibit use-after-free");
        assert!(
            v.0.contains("use-after-free"),
            "expected use-after-free, got: {}",
            v.0
        );
    }

    #[test]
    fn two_concurrent_derefs_are_harmless() {
        let ms = vec![
            Machine::new(
                0,
                vec![Call::Deref(DerefKind::WaitFree), Call::ReleaseResult],
            ),
            Machine::new(
                1,
                vec![Call::Deref(DerefKind::WaitFree), Call::ReleaseResult],
            ),
        ];
        let r = explore(Shared::initial(), ms, |s, ms| {
            assert_eq!(s.mm_ref, [2, 2], "counts must be restored: {s:?}");
            assert_eq!(ms[0].result, Some(0));
            assert_eq!(ms[1].result, Some(0));
            assert!(!s.freed[0]);
        });
        assert!(r.violation.is_none(), "{:?}", r.violation);
    }

    #[test]
    fn clear_to_null_with_concurrent_deref() {
        let ms = vec![
            Machine::new(
                0,
                vec![Call::Deref(DerefKind::WaitFree), Call::ReleaseResult],
            ),
            Machine::new(
                1,
                vec![
                    Call::CasLink {
                        old: Some(0),
                        new: None,
                    },
                    Call::ReleaseIfCasOk(0),
                ],
            ),
        ];
        let r = explore(Shared::initial(), ms, |s, ms| {
            assert!(ms[1].cas_ok);
            assert_eq!(s.link, None);
            assert!(s.freed[0], "{s:?}");
            assert!(ms[0].result == Some(0) || ms[0].result.is_none());
        });
        assert!(r.violation.is_none(), "{:?}", r.violation);
        println!("clear: {} states, {} finals", r.states, r.final_states);
    }

    /// PR 10, the tentpole property over **every** interleaving: a weak
    /// upgrade racing a release-to-zero. Thread 1 starts with one weak
    /// reference on node 0 and tries to upgrade while thread 0 clears the
    /// link and releases its count. The per-step assertions prove the
    /// upgrade is linearized at its CAS (success ⇒ the node was not freed
    /// at that access; failure ⇒ the claim had been taken), and the final
    /// check proves the DEAD-but-weak lifecycle always converges: the
    /// header frees exactly once, after the last weak drop.
    #[test]
    fn weak_upgrade_races_release_to_zero_every_interleaving() {
        let mut init = Shared::initial();
        init.weak[0] = 1; // T1's pre-existing weak reference
        let ms = vec![
            Machine::new(
                0,
                vec![
                    Call::CasLink {
                        old: Some(0),
                        new: None,
                    },
                    Call::ReleaseIfCasOk(0),
                ],
            ),
            Machine::new(
                1,
                vec![
                    Call::WeakUpgrade(0),
                    Call::ReleaseIfUpgradeOk(0),
                    Call::WeakRelease(0),
                ],
            ),
        ];
        let r = explore(init, ms, |s, ms| {
            assert!(ms[0].cas_ok, "the CAS cannot fail in this scenario");
            assert_eq!(s.link, None);
            // Whatever the interleaving — upgrade first (revival), claim
            // first (dead), or the pre-claim window — every count drains
            // and the header frees exactly once.
            assert!(s.freed[0], "DEAD-but-weak header never freed: {s:?}");
            assert_eq!(s.weak[0], 0, "{s:?}");
            assert!(!s.dead[0], "finalize must clear DEAD: {s:?}");
            assert_eq!(s.mm_ref[0], 1, "{s:?}");
        });
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.states > 30, "exploration too small: {} states", r.states);
        println!(
            "weak upgrade race: {} states, {} finals",
            r.states, r.final_states
        );
    }

    /// Two concurrent weak drops against a release-to-zero: the finalize
    /// CAS must have exactly one winner in every interleaving (the
    /// double-free assertion is the teeth).
    #[test]
    fn concurrent_weak_drops_finalize_exactly_once() {
        let mut init = Shared::initial();
        init.weak[0] = 2; // one weak reference per thread
        let ms = vec![
            Machine::new(
                0,
                vec![
                    Call::CasLink {
                        old: Some(0),
                        new: None,
                    },
                    Call::ReleaseIfCasOk(0),
                    Call::WeakRelease(0),
                ],
            ),
            Machine::new(1, vec![Call::WeakRelease(0)]),
        ];
        let r = explore(init, ms, |s, _| {
            assert!(s.freed[0], "{s:?}");
            assert_eq!(s.weak[0], 0, "{s:?}");
            assert!(!s.dead[0], "{s:?}");
        });
        assert!(r.violation.is_none(), "{:?}", r.violation);
        println!(
            "weak drop race: {} states, {} finals",
            r.states, r.final_states
        );
    }

    /// A downgrade-then-upgrade running against the full wait-free
    /// dereference machinery: the weak tier must compose with
    /// announcements and helping, not just with plain releases.
    #[test]
    fn weak_ops_compose_with_wait_free_deref() {
        let mut init = Shared::initial();
        init.weak[0] = 1;
        let ms = vec![
            Machine::new(
                0,
                vec![Call::Deref(DerefKind::WaitFree), Call::ReleaseResult],
            ),
            Machine::new(
                1,
                vec![
                    Call::WeakUpgrade(0),
                    Call::ReleaseIfUpgradeOk(0),
                    Call::WeakRelease(0),
                ],
            ),
        ];
        let r = explore(init, ms, |s, ms| {
            // The link is never cleared, so node 0 survives with exactly
            // the link's count, and the deref returned it.
            assert!(!s.freed[0], "{s:?}");
            assert_eq!(s.mm_ref[0], 2, "{s:?}");
            assert_eq!(s.weak[0], 0, "{s:?}");
            assert!(ms[1].upgrade_ok, "link count was live throughout");
            assert_eq!(ms[0].result, Some(0));
        });
        assert!(r.violation.is_none(), "{:?}", r.violation);
    }

    #[test]
    fn double_swing_ping_pong() {
        // T1 swings a->b; T0 swings it back b->a if it sees b — a tighter
        // dance exercising helping in both directions.
        let ms = vec![
            Machine::new(
                0,
                vec![
                    Call::Deref(DerefKind::WaitFree),
                    Call::ReleaseResult,
                    Call::Deref(DerefKind::WaitFree),
                    Call::ReleaseResult,
                ],
            ),
            Machine::new(
                1,
                vec![
                    Call::FixRef(1, 2),
                    Call::CasLink {
                        old: Some(0),
                        new: Some(1),
                    },
                    Call::ReleaseIfCasOk(0),
                    Call::ReleaseIfCasFailed(1),
                    Call::Release(1),
                ],
            ),
        ];
        let r = explore(Shared::initial(), ms, |s, _| {
            assert!(s.freed[0]);
            assert!(!s.freed[1]);
            assert_eq!(s.mm_ref[1], 2);
        });
        assert!(r.violation.is_none(), "{:?}", r.violation);
    }
}
