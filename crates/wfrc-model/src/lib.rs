//! Exhaustive model checking of the wait-free reference counting protocol.
//!
//! The paper proves linearizability and wait-freedom by hand (§4). This
//! crate re-checks the heart of that proof mechanically: the operations of
//! Figure 4 (`DeRefLink`, `ReleaseRef`, `HelpDeRef`) plus Figure 6's
//! `CompareAndSwapLink` are encoded as explicit step machines over a small
//! shared-memory model, and a depth-first scheduler explores **every**
//! interleaving of two threads (with state memoization), asserting:
//!
//! * **No use-after-free** — a completed dereference never returns a node
//!   that is in the free set at the moment of return (the property naive
//!   reference counting violates, and the one the announcement protocol
//!   exists to restore).
//! * **No double-free / negative counts** — `FreeNode` never sees an
//!   already-freed node; `mm_ref` never underflows.
//! * **Linearizability witnesses** — every dereference returns a value the
//!   link actually held at some instant inside the operation's window
//!   (Lemma 2's statement, checked per schedule).
//! * **Exact final accounting** — at quiescence, every node's `mm_ref`
//!   matches the surviving references, and exactly the right nodes were
//!   reclaimed.
//!
//! The checker has teeth: [`machine::DerefKind::Unsafe`] models the naive
//! dereference (read, then increment, no announcement, no re-check) and
//! the explorer *finds* the use-after-free within a few hundred states —
//! see `naive_deref_is_caught` in the tests. The wait-free dereference
//! passes the same exploration exhaustively.
//!
//! Two protocol families are modeled:
//!
//! * [`machine`]/[`shared`] — the Figure 4 announcement protocol, with
//!   reclamation abstracted to a free set, extended (PR 10) with the
//!   packed strong/weak word: the weak-aware release claim, the
//!   DEAD-but-weak header state, the finalize CAS, and the upgrade whose
//!   success is linearized at a single CAS (succeeds iff the claim bit is
//!   clear — checked against the free set on every interleaving);
//! * [`flmodel`] — the Figure 5 free-list with round-robin gifting,
//!   checking count conservation, distinct allocation, bounded steps, and
//!   the necessity of the F3 correction (DESIGN.md §4a).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![forbid(unsafe_code)]

pub mod explore;
pub mod flmodel;
pub mod machine;
pub mod shared;

pub use explore::{explore, ExploreResult, Violation};
pub use machine::{Call, DerefKind, Machine};
pub use shared::{Claim, NodeId, Shared, MODEL_THREADS};
