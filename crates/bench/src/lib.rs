//! Shared experiment drivers.
//!
//! Each `src/bin/eN_*.rs` binary is a thin front-end over these drivers;
//! DESIGN.md §5 maps experiment ids to binaries. All drivers use fixed
//! operation counts (identical work per scheme — the paper-era
//! methodology), barrier-started workers, and deterministic workload
//! streams, so scheme comparisons are apples-to-apples.

pub mod drivers;
pub mod timing;

use std::time::Duration;

use wfrc_core::counters::CounterSnapshot;

/// Result of one experiment cell.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Worker thread count.
    pub threads: usize,
    /// Total completed operations across workers.
    pub total_ops: u64,
    /// Wall time of the measured section.
    pub wall: Duration,
    /// Merged per-thread memory-management counters (zeroed for the
    /// non-refcounting schemes, which report their own stats).
    pub counters: CounterSnapshot,
}

impl RunResult {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.total_ops as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Parses `--threads 1,2,4` / `--ops 50000` style args with defaults, so
/// every experiment binary shares one tiny CLI convention.
pub struct Args {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Operations per thread.
    pub ops: u64,
    /// Emit a JSON blob after the table.
    pub json: bool,
    /// Run the under-provisioned growth-mode variant (E5/E9): pools start
    /// far below the live-node peak and must grow to finish.
    pub grow: bool,
    /// Run the magazine-mode variant (E5/E9): per-thread allocation
    /// magazines on vs. off, reporting the fast-path hit rate.
    pub magazine: bool,
    /// Run the oscillating-load reclamation variant (E5/E9): grow →
    /// quiesce → shrink cycles, reporting the resident-segment curve and
    /// the throughput cost vs. an identical no-reclaim run.
    pub reclaim: bool,
    /// E4 table selection: `read` (reader-side deref interference), `write`
    /// (zero-announcer link flipping), or `both` (default). E8 additionally
    /// accepts `snapshot` (the PR 9 snapshot-read ablation). Other binaries
    /// ignore it.
    pub mode: String,
    /// E4 read-mode variant: readers use the pinned plain-load snapshot
    /// path (DESIGN.md §4f) instead of counted dereferences.
    pub snapshot: bool,
    /// Byte-class block sizes for the mixed-size experiment (E11), e.g.
    /// `--classes 64,256,1024`. Binaries that don't allocate raw bytes
    /// ignore it; an empty vec means "use the binary's default ladder".
    pub classes: Vec<usize>,
    /// Concurrent async tasks for the server experiment (E12). Other
    /// binaries ignore it.
    pub tasks: usize,
    /// Lease-pool slot counts to sweep (E12), e.g. `--slots 16,64`.
    pub slots: Vec<usize>,
    /// Poll-loop worker threads for E12; 0 means "use the machine's
    /// available parallelism".
    pub workers: usize,
    /// Tasks that die holding a lease (E12 chaos mode); implies the
    /// sentinel supervisor and a lease TTL.
    pub kill: usize,
    /// Admission deadline in milliseconds (E12): tasks shed load instead
    /// of queueing past it. 0 means unbounded waits (the legacy shape).
    pub admission_ms: u64,
    /// Run the sentinel supervisor thread during E12 even without kills.
    pub sentinel: bool,
    /// Fraction of E13 graph-churn ops that are weak reads (back-edge
    /// upgrades through the LRU list), e.g. `--weak-ratio 0.3`. Other
    /// binaries ignore it.
    pub weak_ratio: f64,
}

impl Args {
    /// Parses `std::env::args`, with the given defaults.
    pub fn parse(default_threads: &[usize], default_ops: u64) -> Self {
        let mut out = Self {
            threads: default_threads.to_vec(),
            ops: default_ops,
            json: false,
            grow: false,
            magazine: false,
            reclaim: false,
            mode: "both".into(),
            snapshot: false,
            classes: Vec::new(),
            tasks: 10_000,
            slots: vec![16, 64],
            workers: 0,
            kill: 0,
            admission_ms: 0,
            sentinel: false,
            weak_ratio: 0.25,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--threads" => {
                    let v = args.next().expect("--threads needs a value");
                    out.threads = v
                        .split(',')
                        .map(|s| s.trim().parse().expect("bad thread count"))
                        .collect();
                }
                "--ops" => {
                    out.ops = args
                        .next()
                        .expect("--ops needs a value")
                        .parse()
                        .expect("bad op count");
                }
                "--json" => out.json = true,
                "--grow" => out.grow = true,
                "--magazine" => out.magazine = true,
                "--reclaim" => out.reclaim = true,
                "--mode" => {
                    out.mode = args.next().expect("--mode needs a value");
                    assert!(
                        matches!(out.mode.as_str(), "read" | "write" | "both" | "snapshot"),
                        "bad --mode {} (expected read/write/both/snapshot)",
                        out.mode
                    );
                }
                "--snapshot" => out.snapshot = true,
                "--classes" => {
                    let v = args.next().expect("--classes needs a value");
                    out.classes = v
                        .split(',')
                        .map(|s| s.trim().parse().expect("bad class size"))
                        .collect();
                    assert!(!out.classes.is_empty(), "--classes needs at least one size");
                }
                "--tasks" => {
                    out.tasks = args
                        .next()
                        .expect("--tasks needs a value")
                        .parse()
                        .expect("bad task count");
                }
                "--slots" => {
                    let v = args.next().expect("--slots needs a value");
                    out.slots = v
                        .split(',')
                        .map(|s| s.trim().parse().expect("bad slot count"))
                        .collect();
                    assert!(!out.slots.is_empty(), "--slots needs at least one count");
                }
                "--workers" => {
                    out.workers = args
                        .next()
                        .expect("--workers needs a value")
                        .parse()
                        .expect("bad worker count");
                }
                "--kill" => {
                    out.kill = args
                        .next()
                        .expect("--kill needs a value")
                        .parse()
                        .expect("bad kill count");
                }
                "--admission-ms" => {
                    out.admission_ms = args
                        .next()
                        .expect("--admission-ms needs a value")
                        .parse()
                        .expect("bad admission deadline");
                }
                "--sentinel" => out.sentinel = true,
                "--weak-ratio" => {
                    out.weak_ratio = args
                        .next()
                        .expect("--weak-ratio needs a value")
                        .parse()
                        .expect("bad weak ratio");
                    assert!(
                        (0.0..=1.0).contains(&out.weak_ratio),
                        "--weak-ratio must be in [0, 1]"
                    );
                }
                other => {
                    panic!(
                        "unknown argument: {other} (expected --threads/--ops/--json\
                         /--grow/--magazine/--reclaim/--mode/--snapshot/--classes\
                         /--tasks/--slots/--workers/--kill/--admission-ms/--sentinel\
                         /--weak-ratio)"
                    )
                }
            }
        }
        out
    }
}
