//! Workload drivers, one per experiment family.

use std::sync::Arc;

use wfrc_baselines::epoch::EbrDomain;
use wfrc_baselines::hazard::HpDomain;
use wfrc_baselines::LfrcDomain;
use wfrc_core::counters::{CounterSnapshot, LeaseSnapshot};
use wfrc_core::lease::{LeaseConfig, LeasePool};
use wfrc_core::sentinel::{AdmissionPolicy, Outcome, Sentinel, SentinelConfig};
use wfrc_core::{RawBytes, ReclaimOutcome, WfrcDomain};
use wfrc_sim::exec::{run_fixed_ops, PollLoop, StopFlag};
use wfrc_sim::latency::Histogram;
use wfrc_sim::rng::SmallRng;
use wfrc_sim::workload::{OpKind, WorkloadCfg};
use wfrc_sim::Supervisor;
use wfrc_structures::epoch_queue::EpochQueue;
use wfrc_structures::epoch_stack::EpochStack;
use wfrc_structures::hash_map::{SessionCache, SessionMm};
use wfrc_structures::hp_queue::HpQueue;
use wfrc_structures::hp_stack::HpStack;
use wfrc_structures::lru_list::{LruCell, LruList};
use wfrc_structures::manager::{RcMm, RcMmDomain};
use wfrc_structures::ordered_list::ListCell;
use wfrc_structures::priority_queue::{PqCell, PriorityQueue};
use wfrc_structures::queue::{Queue, QueueCell};
use wfrc_structures::stack::{Stack, StackCell};

use crate::RunResult;

fn merge_counters(parts: Vec<(u64, CounterSnapshot)>) -> (u64, CounterSnapshot) {
    parts
        .into_iter()
        .fold((0, CounterSnapshot::default()), |(ops, acc), (o, c)| {
            (ops + o, acc.merged(&c))
        })
}

/// Capacity heuristic: prefill plus headroom for transient imbalance and
/// per-thread in-flight nodes.
pub fn capacity_for(cfg: &WorkloadCfg, threads: usize, ops: u64) -> usize {
    // A 50/50 random walk wanders ~ O(sqrt(total ops)); give 8x headroom.
    let walk = ((threads as u64 * ops) as f64).sqrt() as usize * 8;
    cfg.prefill + walk + threads * 16 + 1024
}

/// E1: skiplist priority queue, paper workload (50/50 insert/delete-min).
/// Returns total ops + merged counters. Inserts that hit OOM fall back to
/// delete-min (counted normally); with the capacity heuristic this is
/// vanishingly rare.
pub fn run_pq_rc<D>(domain: Arc<D>, threads: usize, ops: u64, cfg: WorkloadCfg) -> RunResult
where
    D: RcMmDomain<PqCell<u64>> + Send + Sync + 'static,
{
    let h0 = domain.register_mm().expect("register");
    let pq = Arc::new(PriorityQueue::<u64>::new(&h0).expect("sentinel"));
    {
        let mut stream = cfg.stream(usize::MAX);
        for _ in 0..cfg.prefill {
            let k = stream.next_key();
            pq.insert(&h0, k, k).expect("prefill");
        }
    }
    drop(h0);
    let (parts, wall) = run_fixed_ops(threads, |t| {
        let domain = Arc::clone(&domain);
        let pq = Arc::clone(&pq);
        let mut stream = cfg.stream(t);
        move || {
            let h = domain.register_mm().expect("register");
            let mut done = 0u64;
            for _ in 0..ops {
                match stream.next_op() {
                    (OpKind::Insert, k) => {
                        if pq.insert(&h, k, k).is_err() {
                            let _ = pq.delete_min(&h);
                        }
                    }
                    (OpKind::Remove, _) | (OpKind::Lookup, _) => {
                        let _ = pq.delete_min(&h);
                    }
                }
                done += 1;
            }
            (done, h.counter_snapshot())
        }
    });
    let (total_ops, counters) = merge_counters(parts);
    // Teardown outside the measured section.
    let h = domain.register_mm().expect("register");
    while pq.delete_min(&h).is_some() {}
    match Arc::try_unwrap(pq) {
        Ok(pq) => pq.dispose(&h),
        Err(_) => unreachable!("workers joined"),
    }
    drop(h);
    RunResult {
        threads,
        total_ops,
        wall,
        counters,
    }
}

/// E2 (refcounting schemes): Treiber stack, push/pop pairs.
pub fn run_stack_rc<D>(domain: Arc<D>, threads: usize, pairs: u64, prefill: usize) -> RunResult
where
    D: RcMmDomain<StackCell<u64>> + Send + Sync + 'static,
{
    let h0 = domain.register_mm().expect("register");
    let stack = Arc::new(Stack::<u64>::new());
    for i in 0..prefill {
        stack.push(&h0, i as u64).expect("prefill");
    }
    drop(h0);
    let (parts, wall) = run_fixed_ops(threads, |_| {
        let domain = Arc::clone(&domain);
        let stack = Arc::clone(&stack);
        move || {
            let h = domain.register_mm().expect("register");
            let mut done = 0u64;
            for i in 0..pairs {
                stack.push(&h, i).expect("push");
                let _ = stack.pop(&h);
                done += 2;
            }
            (done, h.counter_snapshot())
        }
    });
    let (total_ops, counters) = merge_counters(parts);
    let h = domain.register_mm().expect("register");
    stack.clear(&h);
    drop(h);
    RunResult {
        threads,
        total_ops,
        wall,
        counters,
    }
}

/// E2 (hazard pointers): same pairs workload.
pub fn run_stack_hp(threads: usize, pairs: u64, prefill: usize) -> RunResult {
    let domain = Arc::new(HpDomain::new(threads + 1));
    let stack = Arc::new(HpStack::<u64>::new());
    {
        let mut h = domain.register().expect("register");
        for i in 0..prefill {
            stack.push(&mut h, i as u64);
        }
    }
    let (parts, wall) = run_fixed_ops(threads, |_| {
        let domain = Arc::clone(&domain);
        let stack = Arc::clone(&stack);
        move || {
            let mut h = domain.register().expect("register");
            let mut done = 0u64;
            for i in 0..pairs {
                stack.push(&mut h, i);
                let _ = stack.pop(&mut h);
                done += 2;
            }
            done
        }
    });
    RunResult {
        threads,
        total_ops: parts.into_iter().sum(),
        wall,
        counters: CounterSnapshot::default(),
    }
}

/// E2 (epochs): same pairs workload.
pub fn run_stack_ebr(threads: usize, pairs: u64, prefill: usize) -> RunResult {
    let domain = Arc::new(EbrDomain::new(threads + 1));
    let stack = Arc::new(EpochStack::<u64>::new());
    {
        let h = domain.register().expect("register");
        for i in 0..prefill {
            stack.push(&h, i as u64);
        }
    }
    let (parts, wall) = run_fixed_ops(threads, |_| {
        let domain = Arc::clone(&domain);
        let stack = Arc::clone(&stack);
        move || {
            let h = domain.register().expect("register");
            let mut done = 0u64;
            for i in 0..pairs {
                stack.push(&h, i);
                let _ = stack.pop(&h);
                done += 2;
            }
            done
        }
    });
    RunResult {
        threads,
        total_ops: parts.into_iter().sum(),
        wall,
        counters: CounterSnapshot::default(),
    }
}

/// E3 (refcounting schemes): M&S queue, enqueue/dequeue pairs.
pub fn run_queue_rc<D>(domain: Arc<D>, threads: usize, pairs: u64, prefill: usize) -> RunResult
where
    D: RcMmDomain<QueueCell<u64>> + Send + Sync + 'static,
{
    let h0 = domain.register_mm().expect("register");
    let queue = Arc::new(Queue::<u64>::new(&h0).expect("dummy"));
    for i in 0..prefill {
        queue.enqueue(&h0, i as u64).expect("prefill");
    }
    drop(h0);
    let (parts, wall) = run_fixed_ops(threads, |_| {
        let domain = Arc::clone(&domain);
        let queue = Arc::clone(&queue);
        move || {
            let h = domain.register_mm().expect("register");
            let mut done = 0u64;
            for i in 0..pairs {
                queue.enqueue(&h, i).expect("enqueue");
                let _ = queue.dequeue(&h);
                done += 2;
            }
            (done, h.counter_snapshot())
        }
    });
    let (total_ops, counters) = merge_counters(parts);
    let h = domain.register_mm().expect("register");
    match Arc::try_unwrap(queue) {
        Ok(q) => q.dispose(&h),
        Err(_) => unreachable!("workers joined"),
    }
    drop(h);
    RunResult {
        threads,
        total_ops,
        wall,
        counters,
    }
}

/// E3 (hazard pointers).
pub fn run_queue_hp(threads: usize, pairs: u64, prefill: usize) -> RunResult {
    let domain = Arc::new(HpDomain::new(threads + 1));
    let queue = Arc::new(HpQueue::<u64>::new());
    {
        let mut h = domain.register().expect("register");
        for i in 0..prefill {
            queue.enqueue(&mut h, i as u64);
        }
    }
    let (parts, wall) = run_fixed_ops(threads, |_| {
        let domain = Arc::clone(&domain);
        let queue = Arc::clone(&queue);
        move || {
            let mut h = domain.register().expect("register");
            let mut done = 0u64;
            for i in 0..pairs {
                queue.enqueue(&mut h, i);
                let _ = queue.dequeue(&mut h);
                done += 2;
            }
            done
        }
    });
    RunResult {
        threads,
        total_ops: parts.into_iter().sum(),
        wall,
        counters: CounterSnapshot::default(),
    }
}

/// E3 (epochs).
pub fn run_queue_ebr(threads: usize, pairs: u64, prefill: usize) -> RunResult {
    let domain = Arc::new(EbrDomain::new(threads + 1));
    let queue = Arc::new(EpochQueue::<u64>::new());
    {
        let h = domain.register().expect("register");
        for i in 0..prefill {
            queue.enqueue(&h, i as u64);
        }
    }
    let (parts, wall) = run_fixed_ops(threads, |_| {
        let domain = Arc::clone(&domain);
        let queue = Arc::clone(&queue);
        move || {
            let h = domain.register().expect("register");
            let mut done = 0u64;
            for i in 0..pairs {
                queue.enqueue(&h, i);
                let _ = queue.dequeue(&h);
                done += 2;
            }
            done
        }
    });
    RunResult {
        threads,
        total_ops: parts.into_iter().sum(),
        wall,
        counters: CounterSnapshot::default(),
    }
}

/// E4: one reader dereferencing a hot link while `writers` threads flip it
/// between two nodes. Returns the run result (reader ops only), the
/// reader's per-op latency histogram, and the reader's counters — whose
/// `max_deref_retries` is the paper's unboundedness claim made visible.
pub fn run_deref_interference<D, T>(
    domain: Arc<D>,
    writers: usize,
    reader_ops: u64,
) -> (RunResult, Histogram, CounterSnapshot)
where
    T: wfrc_core::RcObject + Default,
    D: RcMmDomain<T> + Send + Sync + 'static,
{
    use wfrc_core::Link;
    let setup = domain.register_mm().expect("register");
    let link = Arc::new(Link::<T>::null());
    let a = setup.alloc_node().expect("node a");
    let b = setup.alloc_node().expect("node b");
    // The experiment owns one *standing* count on each node for its whole
    // duration, so neither can ever be reclaimed and the writers'
    // `add_refs` on the off-link node is always safe.
    // SAFETY: we own the alloc references; store transfers one count into
    // the link, so `a` gets a second count first.
    unsafe {
        setup.add_refs(a, 1);
        setup.store_link(&link, a);
    }
    let a_addr = a as usize;
    let b_addr = b as usize;
    let stop = Arc::new(wfrc_sim::exec::StopFlag::new());

    // Writers flip the link between a and b for the reader's whole run.
    let writer_handles: Vec<_> = (0..writers)
        .map(|_| {
            let domain = Arc::clone(&domain);
            let link = Arc::clone(&link);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let h = domain.register_mm().expect("register");
                while !stop.is_stopped() {
                    flip(&h, &link, a_addr, b_addr);
                }
            })
        })
        .collect();

    // Reader.
    let reader = {
        let domain = Arc::clone(&domain);
        let link = Arc::clone(&link);
        std::thread::spawn(move || {
            let h = domain.register_mm().expect("register");
            let mut hist = Histogram::new();
            let start = std::time::Instant::now();
            for _ in 0..reader_ops {
                let t0 = std::time::Instant::now();
                // SAFETY: link holds nodes of this domain.
                unsafe {
                    let p = h.deref_link(&link);
                    if !p.is_null() {
                        h.release_node(p);
                    }
                }
                hist.record(t0.elapsed().as_nanos() as u64);
            }
            (start.elapsed(), hist, h.counter_snapshot())
        })
    };
    let (wall, hist, reader_counters) = reader.join().unwrap();
    stop.stop();
    for w in writer_handles {
        w.join().unwrap();
    }
    // Teardown: clear the link (releasing its count on whichever node it
    // ended on), then drop our standing counts on both nodes.
    // SAFETY: quiescent — all workers joined.
    unsafe {
        let cur = link.swap_raw(std::ptr::null_mut());
        if !cur.is_null() {
            setup.release_node(cur);
        }
        setup.release_node(a);
        setup.release_node(b);
    }
    let result = RunResult {
        threads: writers + 1,
        total_ops: reader_ops,
        wall,
        counters: reader_counters,
    };
    (result, hist, reader_counters)
}

/// Ops between pin sessions on the snapshot read path: long enough that
/// the per-session epoch bump and pin-bit write amortize to nothing, short
/// enough that writers' deferred frees are never starved for a grace edge.
pub const SNAPSHOT_REPIN: u64 = 1024;

/// E4 (snapshot variant): the same link-flipping interference as
/// [`run_deref_interference`], but the reader uses the pinned plain-load
/// snapshot path (DESIGN.md §4f) instead of counted dereferences — one pin
/// per [`SNAPSHOT_REPIN`] ops, zero count FAAs and zero announcement-slot
/// writes per read. For schemes without protected snapshots (the LFRC
/// baseline's no-op guard, `SNAPSHOT_PROTECTED == false`) the plain load
/// is safe only because the experiment's standing counts pin both nodes
/// for the whole run — which is exactly the comparison E4 wants: the
/// identical reader instruction sequence with and without the protection
/// machinery, under identical writer interference.
pub fn run_deref_interference_snapshot<D, T>(
    domain: Arc<D>,
    writers: usize,
    reader_ops: u64,
) -> (RunResult, Histogram, CounterSnapshot)
where
    T: wfrc_core::RcObject + Default,
    D: RcMmDomain<T> + Send + Sync + 'static,
{
    use wfrc_core::Link;
    let setup = domain.register_mm().expect("register");
    let link = Arc::new(Link::<T>::null());
    let a = setup.alloc_node().expect("node a");
    let b = setup.alloc_node().expect("node b");
    // Standing counts pin both nodes for the whole run (see
    // `run_deref_interference`); they also make the unprotected baseline's
    // plain load sound.
    // SAFETY: we own the alloc references; store transfers one count into
    // the link, so `a` gets a second count first.
    unsafe {
        setup.add_refs(a, 1);
        setup.store_link(&link, a);
    }
    let a_addr = a as usize;
    let b_addr = b as usize;
    let stop = Arc::new(wfrc_sim::exec::StopFlag::new());

    let writer_handles: Vec<_> = (0..writers)
        .map(|_| {
            let domain = Arc::clone(&domain);
            let link = Arc::clone(&link);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let h = domain.register_mm().expect("register");
                while !stop.is_stopped() {
                    flip(&h, &link, a_addr, b_addr);
                }
            })
        })
        .collect();

    // Reader: plain loads under a pin session, re-pinned periodically.
    let reader = {
        let domain = Arc::clone(&domain);
        let link = Arc::clone(&link);
        std::thread::spawn(move || {
            let h = domain.register_mm().expect("register");
            let mut hist = Histogram::new();
            let start = std::time::Instant::now();
            let mut since_pin = 0u64;
            h.snapshot_enter();
            for _ in 0..reader_ops {
                let t0 = std::time::Instant::now();
                // SAFETY: the pin session protects the load under the
                // wait-free scheme; the standing counts protect it under
                // the baseline's no-op guard.
                unsafe {
                    let p = h.snapshot_load(&link);
                    if !p.is_null() {
                        std::hint::black_box(h.payload(p));
                    }
                }
                hist.record(t0.elapsed().as_nanos() as u64);
                since_pin += 1;
                if since_pin == SNAPSHOT_REPIN {
                    // SAFETY: pairs the live session; re-entered at once.
                    unsafe { h.snapshot_exit() };
                    h.snapshot_enter();
                    since_pin = 0;
                }
            }
            // SAFETY: pairs the live session.
            unsafe { h.snapshot_exit() };
            (start.elapsed(), hist, h.counter_snapshot())
        })
    };
    let (wall, hist, reader_counters) = reader.join().unwrap();
    stop.stop();
    for w in writer_handles {
        w.join().unwrap();
    }
    // Teardown as in `run_deref_interference`.
    // SAFETY: quiescent — all workers joined.
    unsafe {
        let cur = link.swap_raw(std::ptr::null_mut());
        if !cur.is_null() {
            setup.release_node(cur);
        }
        setup.release_node(a);
        setup.release_node(b);
    }
    let result = RunResult {
        threads: writers + 1,
        total_ops: reader_ops,
        wall,
        counters: reader_counters,
    };
    (result, hist, reader_counters)
}

/// E8 (snapshot ablation micro): deferred-list drain latency. A second
/// handle parks a pin while the main handle releases `nodes` nodes to a
/// zero count — every free is forced onto the main handle's deferred list.
/// The pin is then dropped and the drain itself is timed. Returns the
/// drained count, the drain wall time, and the releasing handle's counters
/// (whose `deferred_decs` is the forced-defer evidence).
pub fn run_deferred_drain_micro(nodes: usize) -> (usize, std::time::Duration, CounterSnapshot) {
    use wfrc_core::DomainConfig;
    let d = WfrcDomain::<u64>::new(DomainConfig::new(2, nodes + 8));
    let h = d.register().expect("register");
    let pinner = d.register().expect("register");
    let guard = pinner.pin();
    let mut ptrs = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        ptrs.push(h.alloc_raw().expect("alloc"));
    }
    for p in ptrs {
        // SAFETY: we own the alloc reference; the count reaches zero here,
        // and the live pin forces the free onto the deferred list.
        unsafe { h.release_raw(p) };
    }
    drop(guard);
    let t0 = std::time::Instant::now();
    let drained = h.drain_deferred();
    let wall = t0.elapsed();
    let counters = h.counter_snapshot();
    drop(h);
    drop(pinner);
    assert!(d.leak_check().is_clean(), "{}", d.leak_check());
    (drained, wall, counters)
}

/// E4 (write path, zero-announcer): `writers` threads flip a hot link
/// between two standing nodes via raw `CompareAndSwapLink` — never
/// dereferencing it, so no announcement is ever live. Every obligatory
/// `HelpDeRef` therefore runs against an empty announcement table, which is
/// the common case the presence-summary fast path targets: the measured
/// throughput is the §3.2 write-side helping overhead with nothing to help.
/// Returns the merged writer-side result; its `help_scan_skips` /
/// `help_scan_full` counters expose the fast-path hit rate.
pub fn run_write_interference<D, T>(domain: Arc<D>, writers: usize, ops: u64) -> RunResult
where
    T: wfrc_core::RcObject + Default,
    D: RcMmDomain<T> + Send + Sync + 'static,
{
    use wfrc_core::Link;
    assert!(writers >= 1, "write-path mode needs at least one writer");
    let setup = domain.register_mm().expect("register");
    let link = Arc::new(Link::<T>::null());
    let a = setup.alloc_node().expect("node a");
    let b = setup.alloc_node().expect("node b");
    // As in `run_deref_interference`: one standing count pins each node for
    // the whole run, so a blind `add_refs` on either is always safe.
    // SAFETY: we own the alloc references; store transfers one count into
    // the link, so `a` gets a second count first.
    unsafe {
        setup.add_refs(a, 1);
        setup.store_link(&link, a);
    }
    let a_addr = a as usize;
    let b_addr = b as usize;
    let (parts, wall) = run_fixed_ops(writers, |w| {
        let domain = Arc::clone(&domain);
        let link = Arc::clone(&link);
        move || {
            let h = domain.register_mm().expect("register");
            let mut done = 0u64;
            // Stagger the starting direction so the CAS traffic mixes
            // successes and failures at every writer count.
            let (mut from, mut to) = if w % 2 == 0 {
                (a_addr, b_addr)
            } else {
                (b_addr, a_addr)
            };
            for _ in 0..ops {
                let from_p = from as *mut wfrc_core::Node<T>;
                let to_p = to as *mut wfrc_core::Node<T>;
                // SAFETY: both nodes are pinned by the standing counts; the
                // count taken on `to_p` transfers into the link on success
                // and is returned on failure.
                unsafe {
                    h.add_refs(to_p, 1);
                    if h.cas_link(&link, from_p, to_p) {
                        h.release_node(from_p); // the link's old count
                    } else {
                        h.release_node(to_p); // undo
                    }
                }
                core::mem::swap(&mut from, &mut to);
                done += 1;
            }
            (done, h.counter_snapshot())
        }
    });
    let (total_ops, counters) = merge_counters(parts);
    // Teardown: clear the link, then drop the standing counts.
    // SAFETY: quiescent — all workers joined.
    unsafe {
        let cur = link.swap_raw(std::ptr::null_mut());
        if !cur.is_null() {
            setup.release_node(cur);
        }
        setup.release_node(a);
        setup.release_node(b);
    }
    RunResult {
        threads: writers,
        total_ops,
        wall,
        counters,
    }
}

/// One link flip with full §3.2 discipline: dereference the current node,
/// CAS to the partner, release appropriately.
fn flip<T, M>(h: &M, link: &wfrc_core::Link<T>, a_addr: usize, b_addr: usize)
where
    T: wfrc_core::RcObject,
    M: RcMm<T>,
{
    // SAFETY: standard discipline, commented inline.
    unsafe {
        let cur = h.deref_link(link);
        if cur.is_null() {
            return;
        }
        let other = if cur as usize == a_addr {
            b_addr as *mut wfrc_core::Node<T>
        } else {
            a_addr as *mut wfrc_core::Node<T>
        };
        // `other` is kept alive by the experiment's standing counts (the
        // alloc reference the teardown owns), so taking a new count is safe.
        h.add_refs(other, 1);
        if h.cas_link(link, cur, other) {
            h.release_node(cur); // the link's old count
        } else {
            h.release_node(other); // undo
        }
        h.release_node(cur); // our dereference
    }
}

/// E5: raw allocation churn — every thread alloc/releases in a tight loop
/// on a deliberately small pool.
pub fn run_alloc_churn<D, T>(domain: Arc<D>, threads: usize, ops: u64) -> RunResult
where
    T: wfrc_core::RcObject + Default,
    D: RcMmDomain<T> + Send + Sync + 'static,
{
    let (parts, wall) = run_fixed_ops(threads, |_| {
        let domain = Arc::clone(&domain);
        move || {
            let h = domain.register_mm().expect("register");
            let mut done = 0u64;
            let mut failures = 0u64;
            for _ in 0..ops {
                match h.alloc_node() {
                    Ok(n) => {
                        // SAFETY: we own the alloc reference.
                        unsafe { h.release_node(n) };
                        done += 1;
                    }
                    Err(_) => failures += 1,
                }
            }
            assert_eq!(failures, 0, "pool sized to never exhaust");
            (done, h.counter_snapshot())
        }
    });
    let (total_ops, counters) = merge_counters(parts);
    RunResult {
        threads,
        total_ops,
        wall,
        counters,
    }
}

/// E5/E9 (growth mode): alloc-heavy bursts on an under-provisioned
/// growable pool. Each thread repeatedly allocates `hold` nodes and then
/// releases them all; when the pool's initial capacity is below
/// `threads · hold` the run can only finish by growing. Returns the run
/// result plus a merged per-allocation latency histogram — the segment
/// publications live in its tail, which is what the growth-path latency
/// columns report.
pub fn run_alloc_growth<D, T>(
    domain: Arc<D>,
    threads: usize,
    bursts: u64,
    hold: usize,
) -> (RunResult, Histogram)
where
    T: wfrc_core::RcObject + Default,
    D: RcMmDomain<T> + Send + Sync + 'static,
{
    let (parts, wall) = run_fixed_ops(threads, |_| {
        let domain = Arc::clone(&domain);
        move || {
            let h = domain.register_mm().expect("register");
            let mut hist = Histogram::new();
            let mut done = 0u64;
            let mut held = Vec::with_capacity(hold);
            for _ in 0..bursts {
                for _ in 0..hold {
                    let t0 = std::time::Instant::now();
                    let n = h.alloc_node().expect("growth must cover the peak");
                    hist.record(t0.elapsed().as_nanos() as u64);
                    held.push(n);
                    done += 1;
                }
                for n in held.drain(..) {
                    // SAFETY: we own the alloc reference.
                    unsafe { h.release_node(n) };
                }
            }
            (done, h.counter_snapshot(), hist)
        }
    });
    let mut hist = Histogram::new();
    let mut counter_parts = Vec::with_capacity(parts.len());
    for (done, snap, h) in parts {
        hist.merge(&h);
        counter_parts.push((done, snap));
    }
    let (total_ops, counters) = merge_counters(counter_parts);
    (
        RunResult {
            threads,
            total_ops,
            wall,
            counters,
        },
        hist,
    )
}

/// One grow → quiesce → shrink cycle's telemetry (E5/E9 `--reclaim`).
#[derive(Debug, Clone)]
pub struct ReclaimCycle {
    /// Resident segments at the cycle's load peak.
    pub peak_segments: usize,
    /// Resident segments after the quiescent reclaim pass (equals
    /// `peak_segments` on control runs).
    pub resident_after: usize,
    /// Segments retired during the pass.
    pub retired: u64,
    /// Aborted or contended attempts during the pass.
    pub aborted: u64,
}

/// E5/E9 (`--reclaim`): oscillating load on a growable pool. Each cycle,
/// `threads` workers burst-allocate (`bursts` bursts of `hold` held nodes
/// each — forcing growth past the initial capacity), free everything, and
/// exit; then, with `reclaim` on, one reclaimer drives
/// [`wfrc_core::ThreadHandle::reclaim`] to quiescence and the resident-
/// segment count is sampled. The control run (`reclaim == false`) executes
/// the identical workload, so the throughput delta isolates the epoch
/// bumps + occupancy FAAs + reclaim passes that the feature costs.
pub fn run_reclaim_oscillation(
    domain: Arc<WfrcDomain<u64>>,
    threads: usize,
    cycles: usize,
    bursts: u64,
    hold: usize,
    reclaim: bool,
) -> (RunResult, Vec<ReclaimCycle>) {
    let mut curve = Vec::with_capacity(cycles);
    let mut total_ops = 0u64;
    let mut counters = CounterSnapshot::default();
    let start = std::time::Instant::now();
    for _ in 0..cycles {
        let (parts, _) = run_fixed_ops(threads, |_| {
            let domain = Arc::clone(&domain);
            move || {
                let h = domain.register().expect("register");
                let mut done = 0u64;
                let mut held = Vec::with_capacity(hold);
                for _ in 0..bursts {
                    for _ in 0..hold {
                        held.push(h.alloc_with(|v| *v = 1).expect("growth covers the peak"));
                        done += 1;
                    }
                    held.clear();
                }
                (done, h.counters().snapshot())
            }
        });
        let (ops, snap) = merge_counters(parts);
        total_ops += ops;
        counters = counters.merged(&snap);
        let peak = domain.resident_segments();
        let mut cyc = ReclaimCycle {
            peak_segments: peak,
            resident_after: peak,
            retired: 0,
            aborted: 0,
        };
        if reclaim {
            let h = domain.register().expect("register reclaimer");
            let mut stalls = 0u32;
            loop {
                match h.reclaim() {
                    ReclaimOutcome::Retired { .. } => {
                        cyc.retired += 1;
                        stalls = 0;
                    }
                    ReclaimOutcome::NoCandidate => break,
                    _ => {
                        cyc.aborted += 1;
                        stalls += 1;
                        if stalls > 1_000 {
                            break; // report the stall via `aborted` rather than hang
                        }
                        std::thread::yield_now();
                    }
                }
            }
            counters = counters.merged(&h.counters().snapshot());
            cyc.resident_after = domain.resident_segments();
        }
        curve.push(cyc);
    }
    let wall = start.elapsed();
    (
        RunResult {
            threads,
            total_ops,
            wall,
            counters,
        },
        curve,
    )
}

/// The LFRC counterpart of [`run_reclaim_oscillation`]: identical
/// oscillating workload, but reclamation is the stop-the-world
/// [`LfrcDomain::reclaim_quiescent`] between cycles (LFRC has no epochs,
/// so it cannot shrink concurrently — that asymmetry is the point of the
/// comparison).
pub fn run_reclaim_oscillation_lfrc(
    domain: &mut LfrcDomain<u64>,
    threads: usize,
    cycles: usize,
    bursts: u64,
    hold: usize,
    reclaim: bool,
) -> (RunResult, Vec<ReclaimCycle>) {
    let mut curve = Vec::with_capacity(cycles);
    let mut total_ops = 0u64;
    let mut counters = CounterSnapshot::default();
    let start = std::time::Instant::now();
    for _ in 0..cycles {
        let barrier = std::sync::Barrier::new(threads);
        let d = &*domain;
        let parts: Vec<(u64, CounterSnapshot)> = std::thread::scope(|s| {
            let barrier = &barrier;
            let joins: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(move || {
                        let h = d.register().expect("register");
                        barrier.wait();
                        let mut done = 0u64;
                        let mut held = Vec::with_capacity(hold);
                        for _ in 0..bursts {
                            for _ in 0..hold {
                                held.push(h.alloc_raw().expect("growth covers the peak"));
                                done += 1;
                            }
                            for n in held.drain(..) {
                                // SAFETY: we own the alloc reference.
                                unsafe { h.release_raw(n) };
                            }
                        }
                        (done, h.counters().snapshot())
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let (ops, snap) = merge_counters(parts);
        total_ops += ops;
        counters = counters.merged(&snap);
        let peak = domain.segment_count();
        let mut cyc = ReclaimCycle {
            peak_segments: peak,
            resident_after: peak,
            retired: 0,
            aborted: 0,
        };
        if reclaim {
            while domain.reclaim_quiescent() {
                cyc.retired += 1;
            }
            cyc.resident_after = domain.segment_count();
        }
        curve.push(cyc);
    }
    let wall = start.elapsed();
    (
        RunResult {
            threads,
            total_ops,
            wall,
            counters,
        },
        curve,
    )
}

/// Per-class telemetry from one mixed-size run (E11).
#[derive(Debug, Clone)]
pub struct ClassCurve {
    /// Block size of the class in bytes.
    pub size: usize,
    /// Resident segments at the post-workload peak (segments do not shrink
    /// while their blocks are merely free, so this is the run's peak).
    pub peak_segments: usize,
    /// Resident segments after the reclaim pass (== peak on control runs).
    pub resident_after: usize,
    /// Segments retired during the pass.
    pub retired: u64,
    /// Aborted or contended reclaim attempts during the pass.
    pub aborted: u64,
}

/// The mixed-size worker loop shared by both schemes: each op allocates a
/// buffer a few bytes under the rotating class's block size (so smallest-
/// fit selection is exercised, not just exact fits), holds the last
/// `window` tokens as a sliding window (forcing concurrent live blocks in
/// every class, and growth when the classes start under-provisioned), and
/// verifies the first payload byte on every free to catch cross-class
/// block aliasing.
macro_rules! mixed_size_worker {
    ($h:expr, $t:expr, $ops:expr, $sizes:expr, $window:expr) => {{
        let h = $h;
        let max = *$sizes.iter().max().expect("at least one class");
        let mut scratch = vec![0u8; max];
        let mut held: std::collections::VecDeque<(wfrc_core::RawBytes, u8)> =
            std::collections::VecDeque::with_capacity($window);
        let mut done = 0u64;
        for i in 0..$ops {
            let ci = (i as usize + $t) % $sizes.len();
            let len = $sizes[ci] - (i as usize % 8).min($sizes[ci] - 1);
            let fill = (i as u8).wrapping_add($t as u8);
            scratch[0] = fill;
            let tok = h
                .alloc_bytes(&scratch[..len])
                .expect("class growth covers the window");
            done += 1;
            if held.len() == $window {
                let (old, expect) = held.pop_front().expect("window is non-empty");
                // SAFETY: the token is live and this thread owns it.
                let got = unsafe { h.bytes(&old)[0] };
                assert_eq!(got, expect, "mixed-size block corrupted");
                // SAFETY: freed exactly once, token never used again.
                unsafe { h.free_bytes(old) };
            }
            held.push_back((tok, fill));
        }
        for (tok, expect) in held {
            // SAFETY: as above — live, owned, freed once.
            let got = unsafe { h.bytes(&tok)[0] };
            assert_eq!(got, expect, "mixed-size block corrupted");
            unsafe { h.free_bytes(tok) };
        }
        (done, h.counters().snapshot())
    }};
}

/// E11: mixed-size allocation across the domain's byte classes. Every
/// worker cycles through all configured classes (offset by its thread id,
/// so at any instant different threads hammer different classes and all
/// classes are hit concurrently), holding a sliding window of `window`
/// live tokens. With `reclaim` on, a reclaimer then drives
/// [`wfrc_core::ThreadHandle::reclaim_class`] to quiescence per class and
/// the per-class resident-segment counts are sampled.
pub fn run_mixed_size(
    domain: Arc<WfrcDomain<u64>>,
    threads: usize,
    ops: u64,
    window: usize,
    reclaim: bool,
) -> (RunResult, Vec<ClassCurve>) {
    let nclasses = domain.class_count();
    assert!(
        nclasses >= 2,
        "mixed-size run needs at least two byte classes"
    );
    assert!(window >= 1, "window must hold at least one token");
    let sizes: Vec<usize> = (0..nclasses).map(|i| domain.class_block_size(i)).collect();
    let start = std::time::Instant::now();
    let (parts, _) = run_fixed_ops(threads, |t| {
        let domain = Arc::clone(&domain);
        let sizes = sizes.clone();
        move || {
            let h = domain.register().expect("register");
            mixed_size_worker!(&h, t, ops, sizes, window)
        }
    });
    let (total_ops, mut counters) = merge_counters(parts);
    let mut curve: Vec<ClassCurve> = sizes
        .iter()
        .enumerate()
        .map(|(ci, &size)| {
            let peak = domain.class_segments(ci);
            ClassCurve {
                size,
                peak_segments: peak,
                resident_after: peak,
                retired: 0,
                aborted: 0,
            }
        })
        .collect();
    if reclaim {
        let h = domain.register().expect("register reclaimer");
        for (ci, c) in curve.iter_mut().enumerate() {
            let mut stalls = 0u32;
            loop {
                match h.reclaim_class(ci) {
                    ReclaimOutcome::Retired { .. } => {
                        c.retired += 1;
                        stalls = 0;
                    }
                    ReclaimOutcome::NoCandidate => break,
                    _ => {
                        c.aborted += 1;
                        stalls += 1;
                        if stalls > 1_000 {
                            break; // report the stall via `aborted` rather than hang
                        }
                        std::thread::yield_now();
                    }
                }
            }
            c.resident_after = domain.class_segments(ci);
        }
        counters = counters.merged(&h.counters().snapshot());
    }
    let wall = start.elapsed();
    (
        RunResult {
            threads,
            total_ops,
            wall,
            counters,
        },
        curve,
    )
}

/// The LFRC counterpart of [`run_mixed_size`]: identical worker loop over
/// the baseline's single-head byte classes, with reclamation as the
/// stop-the-world [`LfrcDomain::reclaim_class_quiescent`] after the
/// workers exit (`&mut self` is the quiescence proof — the baseline
/// cannot shrink a class concurrently, which is the asymmetry on show).
pub fn run_mixed_size_lfrc(
    domain: &mut LfrcDomain<u64>,
    threads: usize,
    ops: u64,
    window: usize,
    reclaim: bool,
) -> (RunResult, Vec<ClassCurve>) {
    let nclasses = domain.class_count();
    assert!(
        nclasses >= 2,
        "mixed-size run needs at least two byte classes"
    );
    assert!(window >= 1, "window must hold at least one token");
    let sizes: Vec<usize> = (0..nclasses).map(|i| domain.class_block_size(i)).collect();
    let start = std::time::Instant::now();
    let barrier = std::sync::Barrier::new(threads);
    let d = &*domain;
    let parts: Vec<(u64, CounterSnapshot)> = std::thread::scope(|s| {
        let barrier = &barrier;
        let sizes = &sizes;
        let joins: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let h = d.register().expect("register");
                    barrier.wait();
                    mixed_size_worker!(&h, t, ops, sizes, window)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let (total_ops, counters) = merge_counters(parts);
    let mut curve: Vec<ClassCurve> = sizes
        .iter()
        .enumerate()
        .map(|(ci, &size)| {
            let peak = domain.class_segments(ci);
            ClassCurve {
                size,
                peak_segments: peak,
                resident_after: peak,
                retired: 0,
                aborted: 0,
            }
        })
        .collect();
    if reclaim {
        for (ci, c) in curve.iter_mut().enumerate() {
            while domain.reclaim_class_quiescent(ci) {
                c.retired += 1;
            }
            c.resident_after = domain.class_segments(ci);
        }
    }
    let wall = start.elapsed();
    (
        RunResult {
            threads,
            total_ops,
            wall,
            counters,
        },
        curve,
    )
}

/// Renders a per-class resident-segment curve compactly, one
/// `size:peak→resident` entry per class.
pub fn fmt_class_curve(curve: &[ClassCurve]) -> String {
    if curve.is_empty() {
        return "-".into();
    }
    curve
        .iter()
        .map(|c| format!("{}B:{}→{}", c.size, c.peak_segments, c.resident_after))
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders a resident-segment curve compactly: `4→1 ×20` when every cycle
/// repeats the same peak→resident pair, else the first few transitions
/// verbatim.
pub fn fmt_curve(curve: &[ReclaimCycle]) -> String {
    if curve.is_empty() {
        return "-".into();
    }
    let first = (curve[0].peak_segments, curve[0].resident_after);
    if curve
        .iter()
        .all(|c| (c.peak_segments, c.resident_after) == first)
    {
        return format!("{}→{} ×{}", first.0, first.1, curve.len());
    }
    let mut parts: Vec<String> = curve
        .iter()
        .take(6)
        .map(|c| format!("{}→{}", c.peak_segments, c.resident_after))
        .collect();
    if curve.len() > 6 {
        parts.push("…".into());
    }
    parts.join(",")
}

/// E7: per-thread completion fairness under full allocation contention.
/// Returns ops completed by each thread in a fixed wall-clock window.
pub fn run_alloc_fairness<D, T>(domain: Arc<D>, threads: usize, window_ms: u64) -> Vec<u64>
where
    T: wfrc_core::RcObject + Default,
    D: RcMmDomain<T> + Send + Sync + 'static,
{
    use std::time::Duration;
    let (parts, _) =
        wfrc_sim::exec::run_timed(threads, Duration::from_millis(window_ms), |_, stop| {
            let domain = Arc::clone(&domain);
            move || {
                let h = domain.register_mm().expect("register");
                let mut done = 0u64;
                while !stop.is_stopped() {
                    if let Ok(n) = h.alloc_node() {
                        // SAFETY: we own the alloc reference.
                        unsafe { h.release_node(n) };
                        done += 1;
                    }
                }
                done
            }
        });
    parts
}

/// Configuration for the E12 server drivers ([`run_server`] /
/// [`run_server_lfrc`]): `tasks` concurrent async tasks multiplex over a
/// [`LeasePool`] of `slots` registration leases, each performing
/// `ops_per_task` mixed put/get/remove operations against one shared
/// [`SessionCache`] with values drawn from the domain's byte classes.
#[derive(Debug, Clone)]
pub struct ServerCfg {
    /// Concurrent tasks to spawn (M, typically ≫ slots).
    pub tasks: usize,
    /// Lease-pool slots (N, the registration ceiling being virtualized).
    pub slots: usize,
    /// Poll-loop worker threads draining the task set.
    pub workers: usize,
    /// Cache operations per task.
    pub ops_per_task: u64,
    /// Key range shared by all tasks (small ⇒ real contention).
    pub keyspace: u64,
    /// Lease TTL installed in the pool (None ⇒ leases never expire).
    pub ttl: Option<std::time::Duration>,
    /// Run a concurrent segment reclaimer during the measured section
    /// (wfrc only; the LFRC baseline can only reclaim stop-the-world).
    pub reclaim: bool,
    /// Tasks (of `tasks`) that die holding a lease: each leaks its guard
    /// mid-session, leaving the slot checked out until the sentinel
    /// expires and recovers it. Requires `ttl` and `sentinel`.
    pub kill: usize,
    /// Admission-control deadline: tasks acquire through
    /// [`wfrc_core::sentinel::AdmissionPolicy::within`] this bound and
    /// shed load on [`wfrc_core::sentinel::Outcome::Overloaded`] /
    /// `Backpressure` instead of queueing unboundedly (`None` ⇒ legacy
    /// unbounded wait).
    pub admission: Option<std::time::Duration>,
    /// Run a dedicated supervisor thread ticking a
    /// [`wfrc_core::Sentinel`] over the lease pool for the whole measured
    /// section — the only recovery agent in the run.
    pub sentinel: bool,
}

/// Result of one E12 server cell.
pub struct ServerResult {
    /// Tasks drained.
    pub tasks: usize,
    /// Total completed cache operations across tasks.
    pub total_ops: u64,
    /// Wall time of the task drain.
    pub wall: std::time::Duration,
    /// Lease-checkout latency (acquire start → guard in hand), one sample
    /// per task — the queue wait under slot contention is the point.
    pub checkout: Histogram,
    /// Per-operation cache latency across all tasks.
    pub op: Histogram,
    /// Lease-pool statistics at the end of the run.
    pub lease: LeaseSnapshot,
    /// Segments retired by the concurrent reclaimer (wfrc only).
    pub retired: u64,
    /// Aborted/contended reclaim attempts (wfrc only).
    pub aborted: u64,
    /// Tasks that actually died holding a lease (≤ `cfg.kill`; a killer
    /// refused admission dies with nothing to leak).
    pub killed: u64,
    /// Tasks refused admission (Overloaded or Backpressure) that shed
    /// their load instead of queueing.
    pub shed: u64,
    /// Kill → slot-recovered latency samples (sentinel MTTR), one per
    /// recovered kill, matched FIFO against the pool's recovery counter.
    pub mttr: Histogram,
}

impl ServerResult {
    /// Cache operations per second over the drain wall time.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.total_ops as f64 / self.wall.as_secs_f64()
        }
    }
}

/// The per-task op loop shared by both schemes: a 50/30/20 put/get/remove
/// mix, value sizes rotating through the domain's byte classes (a few
/// bytes under each block size, so smallest-fit selection is exercised),
/// first payload byte verified on every hit.
///
/// Keys are striped by the leased slot: a session holding tid `stripe`
/// touches only keys `≡ stripe (mod stride)`. [`SessionCache`]'s session
/// convention requires at-most-one concurrent operator per key, and the
/// lease provides exactly that token — concurrent sessions hold distinct
/// tids (disjoint stripes), while successive holders of the same tid
/// inherit the stripe, so entries outlive the session that wrote them and
/// cross-session reclamation stays on the measured path.
/// Returns completed ops; per-op latencies land in `hist`.
#[allow(clippy::too_many_arguments)]
fn server_session_ops<M: SessionMm>(
    h: &M,
    cache: &SessionCache,
    rng: &mut SmallRng,
    sizes: &[usize],
    keyspace: u64,
    stripe: u64,
    stride: u64,
    ops: u64,
    hist: &mut Histogram,
) -> u64 {
    let max = *sizes.iter().max().expect("at least one byte class");
    let stripe_keys = (keyspace / stride).max(1);
    let mut scratch = vec![0u8; max];
    let mut done = 0u64;
    for i in 0..ops {
        let key = stripe + stride * rng.gen_range(stripe_keys);
        let t0 = std::time::Instant::now();
        let roll = rng.gen_range(100);
        if roll < 50 {
            let size = sizes[rng.gen_range(sizes.len() as u64) as usize];
            let len = size - (i as usize % 8).min(size - 1);
            scratch[0] = key as u8;
            if cache.put(h, key, &scratch[..len]).is_err() {
                // Byte classes exhausted mid-growth: shed load instead.
                cache.remove(h, key);
            }
        } else if roll < 80 {
            if let Some(v) = cache.get(h, key) {
                assert_eq!(v[0], key as u8, "session value corrupted");
            }
        } else {
            cache.remove(h, key);
        }
        hist.record(t0.elapsed().as_nanos() as u64);
        done += 1;
    }
    // One session in four "logs out": it purges its whole stripe on the
    // way to the slot release. The drain windows this opens are what give
    // a concurrent reclaimer fully-free blocks to harvest — a steady
    // 50/30/20 mix alone plateaus at an occupancy where no segment ever
    // empties.
    if rng.gen_range(4) == 0 {
        for k in 0..stripe_keys {
            cache.remove(h, stripe + stride * k);
        }
    }
    done
}

/// E12: the server workload over the wait-free scheme. `cfg.tasks` async
/// tasks on a [`PollLoop`] each check a [`wfrc_core::ThreadHandle`] out of
/// a [`LeasePool`] (`cfg.slots` leases), hammer one shared
/// [`SessionCache`], and check back in — so registration churn, magazine
/// handoff, and checkout queueing are all on the measured path. With
/// `cfg.reclaim`, a dedicated thread (its own registered handle — size the
/// domain at `slots + 1`) concurrently drives
/// [`wfrc_core::ThreadHandle::reclaim_class`] over every byte class for
/// the whole run. The cache is disposed through a final lease before
/// return, so the caller's [`WfrcDomain::leak_check`] must come back
/// clean.
pub fn run_server(domain: &WfrcDomain<ListCell<RawBytes>>, cfg: &ServerCfg) -> ServerResult {
    let sizes: Vec<usize> = (0..domain.class_count())
        .map(|i| domain.class_block_size(i))
        .collect();
    assert!(!sizes.is_empty(), "server bench needs byte classes");
    assert!(
        cfg.kill == 0 || (cfg.ttl.is_some() && cfg.sentinel),
        "killed lease holders only heal through TTL expiry + the sentinel"
    );
    let mut lease_cfg = LeaseConfig::new(cfg.slots);
    if let Some(ttl) = cfg.ttl {
        lease_cfg = lease_cfg.with_ttl(ttl);
    }
    let pool = LeasePool::new(domain, lease_cfg).expect("domain sized for the pool");
    let cache = SessionCache::new(1024);
    let checkout = std::sync::Mutex::new(Histogram::new());
    let op_hist = std::sync::Mutex::new(Histogram::new());
    let total = std::sync::atomic::AtomicU64::new(0);
    let shed = std::sync::atomic::AtomicU64::new(0);
    let killed = std::sync::atomic::AtomicU64::new(0);
    let kill_times = std::sync::Mutex::new(std::collections::VecDeque::new());
    let mttr = std::sync::Mutex::new(Histogram::new());
    let mut exec = PollLoop::new();
    for task in 0..cfg.tasks {
        let (pool, cache, sizes) = (&pool, &cache, &sizes);
        let (checkout, op_hist, total) = (&checkout, &op_hist, &total);
        let (shed, killed, kill_times) = (&shed, &killed, &kill_times);
        let (ops, keyspace, stride) = (cfg.ops_per_task, cfg.keyspace, cfg.slots as u64);
        let admission = cfg.admission;
        // Exactly `cfg.kill` killer tasks, spread evenly across the set.
        let killer =
            cfg.kill > 0 && (task * cfg.kill) / cfg.tasks != ((task + 1) * cfg.kill) / cfg.tasks;
        exec.spawn(async move {
            let mut rng = SmallRng::seed_from_u64(0xE12_0000 + task as u64);
            let t0 = std::time::Instant::now();
            let guard = match admission {
                // Bounded admission: a task that cannot get a slot within
                // the deadline sheds its load (the server's 503) instead
                // of queueing forever behind a dead holder.
                Some(deadline) => {
                    let policy =
                        AdmissionPolicy::within(deadline).with_seed(0xE12_AD31 ^ task as u64);
                    match pool.acquire_async_admitted(&policy).await {
                        Outcome::Admitted(g) => g,
                        Outcome::Overloaded { .. } | Outcome::Backpressure { .. } => {
                            shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            return;
                        }
                    }
                }
                None => pool.acquire_async().await,
            };
            let waited = t0.elapsed().as_nanos() as u64;
            let stripe = guard.tid() as u64;
            let mut local = Histogram::new();
            let done = server_session_ops(
                &*guard,
                cache,
                &mut rng,
                sizes,
                keyspace,
                stripe,
                stride,
                if killer { ops / 2 } else { ops },
                &mut local,
            );
            if killer {
                // The session "crashes" holding its lease: the guard is
                // leaked, so the slot stays checked out until the sentinel
                // expires the overdue deadline and recovers it. MTTR is
                // measured from this instant.
                kill_times
                    .lock()
                    .unwrap()
                    .push_back(std::time::Instant::now());
                killed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                core::mem::forget(guard);
            } else {
                drop(guard);
            }
            checkout.lock().unwrap().record(waited);
            op_hist.lock().unwrap().merge(&local);
            total.fetch_add(done, std::sync::atomic::Ordering::Relaxed);
        });
    }
    let stop = StopFlag::new();
    let sentinel = cfg
        .sentinel
        .then(|| Sentinel::new(&pool, SentinelConfig::default().with_seed(0xE12_5EA1)));
    let (wall, retired, aborted) = std::thread::scope(|s| {
        let supervisor = sentinel.as_ref().map(|sen| {
            let (pool, kill_times, mttr) = (&pool, &kill_times, &mttr);
            let recovered_seen = std::sync::atomic::AtomicU64::new(0);
            Supervisor::spawn_scoped(s, std::time::Duration::from_millis(1), move || {
                sen.tick();
                // FIFO-match pool recoveries against recorded kill
                // instants: kills expire in deadline order, so the n-th
                // recovery heals the n-th kill.
                let rec = pool.stats().recovered;
                let mut seen = recovered_seen.load(std::sync::atomic::Ordering::Relaxed);
                while seen < rec {
                    if let Some(t0) = kill_times.lock().unwrap().pop_front() {
                        mttr.lock().unwrap().record(t0.elapsed().as_nanos() as u64);
                    }
                    seen += 1;
                }
                recovered_seen.store(seen, std::sync::atomic::Ordering::Relaxed);
            })
        });
        if std::env::var_os("E12_WATCHDOG").is_some() {
            let (stop, pool, total, checkout) = (&stop, &pool, &total, &checkout);
            s.spawn(move || {
                let mut last = u64::MAX;
                let mut stalls = 0u32;
                while !stop.is_stopped() {
                    std::thread::sleep(std::time::Duration::from_millis(500));
                    let now = total.load(std::sync::atomic::Ordering::Relaxed);
                    if now == last {
                        stalls += 1;
                    } else {
                        stalls = 0;
                        last = now;
                    }
                    if stalls >= 10 {
                        eprintln!(
                            "[watchdog] stalled: total_ops={now} checkouts_done={} stats={:?} {}",
                            checkout.lock().unwrap().len(),
                            pool.stats(),
                            pool.debug_state(),
                        );
                        std::process::abort();
                    }
                }
            });
        }
        let reclaimer = cfg.reclaim.then(|| {
            let stop = &stop;
            s.spawn(move || {
                let h = domain.register().expect("domain sized for the reclaimer");
                let (mut retired, mut aborted) = (0u64, 0u64);
                while !stop.is_stopped() {
                    for ci in 0..domain.class_count() {
                        match h.reclaim_class(ci) {
                            ReclaimOutcome::Retired { .. } => retired += 1,
                            ReclaimOutcome::NoCandidate => {}
                            _ => aborted += 1,
                        }
                    }
                    std::thread::yield_now();
                }
                (retired, aborted)
            })
        });
        let wall = exec.run(cfg.workers);
        stop.stop();
        let (retired, aborted) = reclaimer.map_or((0, 0), |j| j.join().unwrap());
        // Acceptance gate: every killed holder's slot must come back
        // through the sentinel alone, within a hard bound — the supervisor
        // keeps ticking until it has.
        let kills = killed.load(std::sync::atomic::Ordering::Relaxed);
        if kills > 0 {
            let t0 = std::time::Instant::now();
            while pool.stats().recovered < kills {
                assert!(
                    t0.elapsed() < std::time::Duration::from_secs(10),
                    "sentinel recovered only {} of {kills} killed leases within 10s",
                    pool.stats().recovered
                );
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        if let Some(sup) = &supervisor {
            sup.stop();
        }
        (wall, retired, aborted)
    });
    drop(sentinel);
    let g = pool.acquire();
    cache.dispose(&*g);
    drop(g);
    // Teardown reclamation: with every session gone, the grown arena
    // should come back. Flush each slot's magazines (freed blocks parked
    // there pin their segments), then sweep the classes to quiescence —
    // the server-shaped analogue of E11's drain phase. Mid-run retirement
    // is rare by design: a live cache holds every segment partially
    // occupied, so the elastic story is the logout/teardown drains.
    let retired = if cfg.reclaim {
        let guards: Vec<_> = (0..cfg.slots).map(|_| pool.acquire()).collect();
        for g in &guards {
            g.flush_magazines();
        }
        let h = &guards[0];
        let mut swept = retired;
        loop {
            let mut progressed = false;
            for ci in 0..domain.class_count() {
                if let ReclaimOutcome::Retired { .. } = h.reclaim_class(ci) {
                    swept += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        swept
    } else {
        retired
    };
    let lease = pool.stats();
    drop(pool);
    ServerResult {
        tasks: cfg.tasks,
        total_ops: total.into_inner(),
        wall,
        checkout: checkout.into_inner().unwrap(),
        op: op_hist.into_inner().unwrap(),
        lease,
        retired,
        aborted,
        killed: killed.into_inner(),
        shed: shed.into_inner(),
        mttr: mttr.into_inner().unwrap(),
    }
}

/// The LFRC counterpart of [`run_server`]: identical task set over the
/// baseline's lease pool — including admission control, killer tasks, and
/// the sentinel supervisor (the `Supervised` surface is scheme-agnostic).
/// `cfg.reclaim` is ignored here — the baseline's byte-class reclamation
/// is stop-the-world (`&mut self`), so the caller runs
/// [`LfrcDomain::reclaim_class_quiescent`] after this returns; that
/// asymmetry is part of what E12 shows.
pub fn run_server_lfrc(domain: &LfrcDomain<ListCell<RawBytes>>, cfg: &ServerCfg) -> ServerResult {
    let sizes: Vec<usize> = (0..domain.class_count())
        .map(|i| domain.class_block_size(i))
        .collect();
    assert!(!sizes.is_empty(), "server bench needs byte classes");
    assert!(
        cfg.kill == 0 || (cfg.ttl.is_some() && cfg.sentinel),
        "killed lease holders only heal through TTL expiry + the sentinel"
    );
    let mut lease_cfg = LeaseConfig::new(cfg.slots);
    if let Some(ttl) = cfg.ttl {
        lease_cfg = lease_cfg.with_ttl(ttl);
    }
    let pool = LeasePool::new(domain, lease_cfg).expect("domain sized for the pool");
    let cache = SessionCache::new(1024);
    let checkout = std::sync::Mutex::new(Histogram::new());
    let op_hist = std::sync::Mutex::new(Histogram::new());
    let total = std::sync::atomic::AtomicU64::new(0);
    let shed = std::sync::atomic::AtomicU64::new(0);
    let killed = std::sync::atomic::AtomicU64::new(0);
    let kill_times = std::sync::Mutex::new(std::collections::VecDeque::new());
    let mttr = std::sync::Mutex::new(Histogram::new());
    let mut exec = PollLoop::new();
    for task in 0..cfg.tasks {
        let (pool, cache, sizes) = (&pool, &cache, &sizes);
        let (checkout, op_hist, total) = (&checkout, &op_hist, &total);
        let (shed, killed, kill_times) = (&shed, &killed, &kill_times);
        let (ops, keyspace, stride) = (cfg.ops_per_task, cfg.keyspace, cfg.slots as u64);
        let admission = cfg.admission;
        let killer =
            cfg.kill > 0 && (task * cfg.kill) / cfg.tasks != ((task + 1) * cfg.kill) / cfg.tasks;
        exec.spawn(async move {
            let mut rng = SmallRng::seed_from_u64(0xE12_0000 + task as u64);
            let t0 = std::time::Instant::now();
            let guard = match admission {
                Some(deadline) => {
                    let policy =
                        AdmissionPolicy::within(deadline).with_seed(0xE12_AD31 ^ task as u64);
                    match pool.acquire_async_admitted(&policy).await {
                        Outcome::Admitted(g) => g,
                        Outcome::Overloaded { .. } | Outcome::Backpressure { .. } => {
                            shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            return;
                        }
                    }
                }
                None => pool.acquire_async().await,
            };
            let waited = t0.elapsed().as_nanos() as u64;
            let stripe = guard.tid() as u64;
            let mut local = Histogram::new();
            let done = server_session_ops(
                &*guard,
                cache,
                &mut rng,
                sizes,
                keyspace,
                stripe,
                stride,
                if killer { ops / 2 } else { ops },
                &mut local,
            );
            if killer {
                kill_times
                    .lock()
                    .unwrap()
                    .push_back(std::time::Instant::now());
                killed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                core::mem::forget(guard);
            } else {
                drop(guard);
            }
            checkout.lock().unwrap().record(waited);
            op_hist.lock().unwrap().merge(&local);
            total.fetch_add(done, std::sync::atomic::Ordering::Relaxed);
        });
    }
    let sentinel = cfg
        .sentinel
        .then(|| Sentinel::new(&pool, SentinelConfig::default().with_seed(0xE12_5EA1)));
    let wall = std::thread::scope(|s| {
        let supervisor = sentinel.as_ref().map(|sen| {
            let (pool, kill_times, mttr) = (&pool, &kill_times, &mttr);
            let recovered_seen = std::sync::atomic::AtomicU64::new(0);
            Supervisor::spawn_scoped(s, std::time::Duration::from_millis(1), move || {
                sen.tick();
                let rec = pool.stats().recovered;
                let mut seen = recovered_seen.load(std::sync::atomic::Ordering::Relaxed);
                while seen < rec {
                    if let Some(t0) = kill_times.lock().unwrap().pop_front() {
                        mttr.lock().unwrap().record(t0.elapsed().as_nanos() as u64);
                    }
                    seen += 1;
                }
                recovered_seen.store(seen, std::sync::atomic::Ordering::Relaxed);
            })
        });
        let wall = exec.run(cfg.workers);
        let kills = killed.load(std::sync::atomic::Ordering::Relaxed);
        if kills > 0 {
            let t0 = std::time::Instant::now();
            while pool.stats().recovered < kills {
                assert!(
                    t0.elapsed() < std::time::Duration::from_secs(10),
                    "sentinel recovered only {} of {kills} killed leases within 10s",
                    pool.stats().recovered
                );
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        if let Some(sup) = &supervisor {
            sup.stop();
        }
        wall
    });
    drop(sentinel);
    let g = pool.acquire();
    cache.dispose(&*g);
    drop(g);
    let lease = pool.stats();
    drop(pool);
    ServerResult {
        tasks: cfg.tasks,
        total_ops: total.into_inner(),
        wall,
        checkout: checkout.into_inner().unwrap(),
        op: op_hist.into_inner().unwrap(),
        lease,
        retired: 0,
        aborted: 0,
        killed: killed.into_inner(),
        shed: shed.into_inner(),
        mttr: mttr.into_inner().unwrap(),
    }
}

/// E13: graph churn over the weak-edged LRU list (PR 10).
///
/// Workers churn one shared [`LruList`] — strong ops alternate
/// `push_front`/`pop_front` (each pop retargets the tail hint and kills a
/// node other threads may hold weak edges to), and a `weak_ratio` fraction
/// of ops are weak reads (`peek_lru` + a bounded `walk_newer`), each an
/// `AtomicWeak` load + upgrade racing the concurrent release-to-zero.
/// With `snapshot`, every weak read runs inside a pin session — the PR 9
/// deferred-reclamation composition, so upgrades race DEAD-but-weak
/// headers whose frees are parked on deferred lists.
///
/// Returns the run plus the teardown [`wfrc_core::LeakReport`]: the E13
/// acceptance gate is `is_clean()` with `weak_count == 0`.
pub fn run_graph_churn<D>(
    domain: Arc<D>,
    threads: usize,
    ops: u64,
    weak_ratio: f64,
    snapshot: bool,
) -> (RunResult, wfrc_core::LeakReport)
where
    D: RcMmDomain<LruCell<u64>> + Send + Sync + 'static,
{
    let lru = Arc::new(LruList::<u64>::new());
    let h0 = domain.register_mm().expect("register");
    for i in 0..64u64 {
        lru.push_front(&h0, i).expect("prefill");
    }
    drop(h0);
    let (parts, wall) = run_fixed_ops(threads, |t| {
        let domain = Arc::clone(&domain);
        let lru = Arc::clone(&lru);
        let mut rng = SmallRng::seed_from_u64(0xE13 ^ ((t as u64) << 32));
        move || {
            let h = domain.register_mm().expect("register");
            let mut done = 0u64;
            for i in 0..ops {
                if rng.gen_bool(weak_ratio) {
                    if snapshot {
                        h.snapshot_enter();
                        let _ = lru.peek_lru(&h);
                        let _ = lru.walk_newer(&h, 4);
                        // SAFETY: pairs the enter above; no snapshot
                        // pointer escapes the session.
                        unsafe { h.snapshot_exit() };
                    } else {
                        let _ = lru.peek_lru(&h);
                        let _ = lru.walk_newer(&h, 4);
                    }
                } else if i % 2 == 0 {
                    // OOM under transient imbalance falls back to a pop,
                    // keeping the list near its steady-state size.
                    if lru.push_front(&h, ((t as u64) << 32) | i).is_err() {
                        let _ = lru.pop_front(&h);
                    }
                } else {
                    let _ = lru.pop_front(&h);
                }
                done += 1;
            }
            (done, h.counter_snapshot())
        }
    });
    let (total_ops, counters) = merge_counters(parts);
    // Teardown outside the measured section, then the leak-freedom gate.
    let h = domain.register_mm().expect("register");
    lru.clear(&h);
    drop(h);
    let leaks = domain.leak_check_mm();
    (
        RunResult {
            threads,
            total_ops,
            wall,
            counters,
        },
        leaks,
    )
}
