//! Minimal single-threaded timing harness for the micro-benches.
//!
//! The `benches/*.rs` targets used to be Criterion benches; the workspace
//! now builds offline with zero external crates, so this module provides
//! the small subset actually needed: run a closure in timed batches,
//! report the median ns/op over a fixed number of samples. Output is one
//! aligned row per benchmark, the same shape the experiment binaries
//! print.

use std::hint::black_box;
use std::time::Instant;

/// Number of timed samples per benchmark.
const SAMPLES: usize = 20;
/// Target wall time per sample; batch size is calibrated to hit this.
const SAMPLE_TARGET_NS: u64 = 20_000_000;

/// Times `f` (one benched operation per call) and prints
/// `group/name  median  min  max` in ns/op.
pub fn bench<R>(group: &str, name: &str, mut f: impl FnMut() -> R) {
    // Calibrate: grow the batch until one batch takes ≥ 1/10 of the
    // sample target, then size batches to the target.
    let mut batch: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let ns = t.elapsed().as_nanos() as u64;
        if ns >= SAMPLE_TARGET_NS / 10 || batch >= 1 << 30 {
            batch = batch
                .saturating_mul(SAMPLE_TARGET_NS)
                .checked_div(ns)
                .map_or(batch * 10, |b| b.max(1));
            break;
        }
        batch *= 10;
    }

    let mut per_op: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_op.sort_by(|a, b| a.total_cmp(b));
    let median = per_op[SAMPLES / 2];
    let min = per_op[0];
    let max = per_op[SAMPLES - 1];
    println!("{group}/{name:<24} median {median:>10.1} ns/op   (min {min:.1}, max {max:.1})");
}
