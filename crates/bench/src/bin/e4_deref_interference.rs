//! E4 — the wait-freedom of `DeRefLink` (Lemma 6) vs. the unbounded retry
//! loop of Valois-style dereferencing, under adversarial link flipping.
//!
//! One reader dereferences a hot link while k writer threads flip it
//! between two nodes. The load-bearing column is **max retries per op**:
//! structurally 0 for the wait-free scheme (its dereference has no retry
//! loop at all — the announcement either survives or is answered), and
//! growing with interference for the lock-free baseline. Latency
//! percentiles on a 1-CPU box are dominated by preemption, so the retry
//! counters are the primary evidence; the latency tail is reported anyway.
//!
//! ```text
//! cargo run --release --bin e4_deref_interference [-- --threads 0,1,2,4 --ops 100000 --json]
//! ```
//! (here `--threads` = interfering writer counts)

use std::sync::Arc;

use bench::drivers::run_deref_interference;
use bench::Args;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_sim::stats::{fmt_ns, Summary, Table};
use wfrc_sim::Histogram;

fn main() {
    let args = Args::parse(&[0, 1, 2, 4], 100_000);
    let mut table = Table::new(
        "E4: DeRefLink under link-flipping interference (reader-side)",
        &[
            "writers",
            "scheme",
            "reader ops/s",
            "mean",
            "p99",
            "max",
            "deref retries (total)",
            "max retries/op",
            "helped derefs",
        ],
    );
    for &w in &args.threads {
        for scheme in ["wfrc", "lfrc"] {
            let (result, hist, counters): (bench::RunResult, Histogram, _) = if scheme == "wfrc" {
                let d = Arc::new(WfrcDomain::<u64>::new(DomainConfig::new(w + 2, 16)));
                run_deref_interference(d, w, args.ops)
            } else {
                // Disable backoff so retry counts reflect raw contention.
                let mut d = LfrcDomain::<u64>::new(w + 2, 16);
                d.set_backoff(false);
                run_deref_interference(Arc::new(d), w, args.ops)
            };
            let s = Summary::of(&hist);
            table.row(&[
                w.to_string(),
                scheme.to_string(),
                wfrc_sim::stats::fmt_ops(result.ops_per_sec()),
                fmt_ns(s.mean as u64),
                fmt_ns(s.p99),
                fmt_ns(s.max),
                counters.deref_retries.to_string(),
                counters.max_deref_retries.to_string(),
                counters.deref_helped.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "note: wfrc max retries/op is structurally 0 (DeRefLink has no retry loop; Lemma 6).\n"
    );
    if args.json {
        println!("{}", table.to_json());
    }
}
