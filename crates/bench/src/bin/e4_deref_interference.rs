//! E4 — the wait-freedom of `DeRefLink` (Lemma 6) vs. the unbounded retry
//! loop of Valois-style dereferencing, under adversarial link flipping.
//!
//! Two tables, selected with `--mode read|write|both`:
//!
//! * **read** (reader-side): one reader dereferences a hot link while k
//!   writer threads flip it between two nodes. The load-bearing column is
//!   **max retries per op**: structurally 0 for the wait-free scheme (its
//!   dereference has no retry loop at all — the announcement either
//!   survives or is answered), and growing with interference for the
//!   lock-free baseline. Latency percentiles on a 1-CPU box are dominated
//!   by preemption, so the retry counters are the primary evidence; the
//!   latency tail is reported anyway.
//! * **write** (zero-announcer): the writers flip the link via raw
//!   `CompareAndSwapLink` with **no reader and no dereference anywhere**,
//!   so no announcement is ever live and every obligatory `HelpDeRef` runs
//!   against an empty table. The skip-rate column shows how often the
//!   announcement-presence summary answered that in one word
//!   (`help_scan_skips / (help_scan_skips + help_scan_full)`); the ops/s
//!   column is the §3.2 write-side helping tax with nothing to help —
//!   the common case for store/CAS-heavy workloads. The domain is sized
//!   at [`NR_THREADS`] for every row (the paper's `NR_THREADS` is a
//!   compile-time machine constant, so the matrices — and the O(N) sweep
//!   the summary short-circuits — are sized for the machine, not for the
//!   active writer count).
//!
//! A third variant, `--mode read --snapshot`, swaps the reader's counted
//! dereference for the PR 9 pinned plain-load snapshot path — see
//! [`read_snapshot_table`].
//!
//! ```text
//! cargo run --release --bin e4_deref_interference [-- --threads 0,1,2,4 --ops 100000 --json --mode both]
//! cargo run --release --bin e4_deref_interference -- --mode read --snapshot
//! ```
//! (here `--threads` = interfering writer counts; write mode skips 0)

use std::sync::Arc;

use bench::drivers::{
    run_deref_interference, run_deref_interference_snapshot, run_write_interference,
};
use bench::Args;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_sim::stats::{fmt_ns, Summary, Table};
use wfrc_sim::Histogram;

fn read_table(args: &Args) {
    let mut table = Table::new(
        "E4: DeRefLink under link-flipping interference (reader-side)",
        &[
            "writers",
            "scheme",
            "reader ops/s",
            "mean",
            "p99",
            "max",
            "deref retries (total)",
            "max retries/op",
            "helped derefs",
        ],
    );
    for &w in &args.threads {
        for scheme in ["wfrc", "lfrc"] {
            let (result, hist, counters): (bench::RunResult, Histogram, _) = if scheme == "wfrc" {
                let d = Arc::new(WfrcDomain::<u64>::new(DomainConfig::new(w + 2, 16)));
                run_deref_interference(d, w, args.ops)
            } else {
                // Disable backoff so retry counts reflect raw contention.
                let mut d = LfrcDomain::<u64>::new(w + 2, 16);
                d.set_backoff(false);
                run_deref_interference(Arc::new(d), w, args.ops)
            };
            let s = Summary::of(&hist);
            table.row(&[
                w.to_string(),
                scheme.to_string(),
                wfrc_sim::stats::fmt_ops(result.ops_per_sec()),
                fmt_ns(s.mean as u64),
                fmt_ns(s.p99),
                fmt_ns(s.max),
                counters.deref_retries.to_string(),
                counters.max_deref_retries.to_string(),
                counters.deref_helped.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "note: wfrc max retries/op is structurally 0 (DeRefLink has no retry loop; Lemma 6).\n"
    );
    if args.json {
        println!("{}", table.to_json());
    }
}

/// E4 `--mode read --snapshot`: the PR 9 snapshot read path — the reader
/// holds a pin session and dereferences with plain loads (DESIGN.md §4f).
/// The headline column is **ns/deref vs. LFRC**: the counted wait-free
/// path pays ~2× the baseline's per-deref cost (announcement write + count
/// FAAs); the snapshot path runs the identical loads the unprotected
/// baseline runs, so the gap collapses. `snapshot derefs` confirms every
/// read took the plain-load path (zero FAAs each); `deferred decs` counts
/// frees the live pin diverted to the deferred lists (0 here — the
/// experiment's standing counts mean no node ever dies mid-run).
fn read_snapshot_table(args: &Args) {
    let mut table = Table::new(
        "E4 (snapshot): plain-load reads under a pin, link-flipping interference",
        &[
            "writers",
            "scheme",
            "reader ops/s",
            "mean",
            "p99",
            "max",
            "snapshot derefs",
            "deferred decs",
            "upgrade slow",
        ],
    );
    for &w in &args.threads {
        for scheme in ["wfrc", "lfrc"] {
            let (result, hist, counters): (bench::RunResult, Histogram, _) = if scheme == "wfrc" {
                let d = Arc::new(WfrcDomain::<u64>::new(DomainConfig::new(w + 2, 16)));
                run_deref_interference_snapshot(d, w, args.ops)
            } else {
                let mut d = LfrcDomain::<u64>::new(w + 2, 16);
                d.set_backoff(false);
                run_deref_interference_snapshot(Arc::new(d), w, args.ops)
            };
            let s = Summary::of(&hist);
            table.row(&[
                w.to_string(),
                scheme.to_string(),
                wfrc_sim::stats::fmt_ops(result.ops_per_sec()),
                fmt_ns(s.mean as u64),
                fmt_ns(s.p99),
                fmt_ns(s.max),
                counters.snapshot_derefs.to_string(),
                counters.deferred_decs.to_string(),
                counters.upgrade_slow.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "note: both schemes run the identical plain-load reader loop; the lfrc row's\n\
         guard is a no-op (its loads are protected only by the experiment's standing\n\
         counts), so the wfrc/lfrc ratio is the full price of snapshot protection.\n"
    );
    if args.json {
        println!("{}", table.to_json());
    }
}

/// The write table's `NR_THREADS` (paper §3: the matrices are statically
/// sized for the machine). Sizing per-row at `writers + 1` instead would
/// shrink the very sweep the presence summary is meant to short-circuit.
const NR_THREADS: usize = 32;

fn write_table(args: &Args) {
    let mut table = Table::new(
        "E4 (write path): link flips with no announcer (help-scan fast path)",
        &[
            "writers",
            "scheme",
            "write ops/s",
            "help_calls",
            "help_answers",
            "scan skips",
            "full scans",
            "skip rate",
        ],
    );
    for &w in &args.threads {
        if w == 0 {
            continue; // the write table needs at least one writer
        }
        let n = NR_THREADS.max(w + 1);
        for scheme in ["wfrc", "lfrc"] {
            let result = if scheme == "wfrc" {
                let d = Arc::new(WfrcDomain::<u64>::new(DomainConfig::new(n, 16)));
                run_write_interference(d, w, args.ops)
            } else {
                let mut d = LfrcDomain::<u64>::new(n, 16);
                d.set_backoff(false);
                run_write_interference(Arc::new(d), w, args.ops)
            };
            let c = result.counters;
            table.row(&[
                w.to_string(),
                scheme.to_string(),
                wfrc_sim::stats::fmt_ops(result.ops_per_sec()),
                c.help_calls.to_string(),
                c.help_answers.to_string(),
                c.help_scan_skips.to_string(),
                c.help_scan_full.to_string(),
                skip_rate(c.help_scan_skips, c.help_scan_full),
            ]);
        }
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}

/// `skips / (skips + full)`, or `n/a` when the scheme never scans (LFRC has
/// no helping obligation at all).
fn skip_rate(skips: u64, full: u64) -> String {
    let total = skips + full;
    if total == 0 {
        "n/a".into()
    } else {
        format!("{:.4}", skips as f64 / total as f64)
    }
}

fn main() {
    let args = Args::parse(&[0, 1, 2, 4], 100_000);
    match args.mode.as_str() {
        "read" if args.snapshot => read_snapshot_table(&args),
        "read" => read_table(&args),
        "write" => write_table(&args),
        _ => {
            read_table(&args);
            if args.snapshot {
                read_snapshot_table(&args);
            }
            write_table(&args);
        }
    }
}
