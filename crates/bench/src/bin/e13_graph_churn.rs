//! E13 — graph churn over weak back edges (PR 10): the `LruList`'s
//! recency structure holds `AtomicWeak` back edges and a weak tail hint,
//! so every weak read is a load + upgrade racing concurrent
//! release-to-zero, and every pop drives a header through the
//! DEAD-but-weak lifecycle under live readers.
//!
//! One table, `threads × scheme`:
//!
//! * **ops/s** — mixed strong/weak throughput at the requested
//!   `--weak-ratio` (default 0.25: a quarter of ops are weak reads);
//! * **weak upgrades / upgrade failed / fail rate** — how often readers'
//!   upgrades lost the race to a release-to-zero (the linearization the
//!   model proves: failure iff the claim bit was set);
//! * **weak_count@end** — the acceptance gate: after teardown the weak
//!   tier must be fully drained (`LeakReport::weak_count == 0`) and the
//!   domain leak-free. The binary asserts both, so a leaking soak fails
//!   loudly rather than shipping a pretty number.
//!
//! `--snapshot` composes the weak reads with the PR 9 pin machinery:
//! every weak read runs inside a snapshot session, so upgrades race
//! DEAD-but-weak headers whose frees sit parked on deferred lists.
//!
//! ```text
//! cargo run --release --bin e13_graph_churn [-- --threads 2,8 --ops 50000 --weak-ratio 0.3 --snapshot --json]
//! ```

use std::sync::Arc;

use bench::drivers::run_graph_churn;
use bench::Args;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_structures::lru_list::LruCell;

fn fail_rate(failed: u64, attempts: u64) -> String {
    if attempts == 0 {
        "n/a".into()
    } else {
        format!("{:.4}", failed as f64 / attempts as f64)
    }
}

fn main() {
    let args = Args::parse(&[2, 8], 50_000);
    let title = if args.snapshot {
        "E13: graph churn over weak back edges (LRU list, weak reads under a pin)"
    } else {
        "E13: graph churn over weak back edges (LRU list)"
    };
    let mut table = wfrc_sim::stats::Table::new(
        title,
        &[
            "threads",
            "scheme",
            "ops/s",
            "weak upgrades",
            "upgrade failed",
            "fail rate",
            "weak_count@end",
        ],
    );
    for &t in &args.threads {
        let t = t.max(1);
        // Steady-state list size is bounded by the prefill plus transient
        // imbalance; OOM on push falls back to a pop inside the driver.
        let cap = 4096 + t * 2048;
        for scheme in ["wfrc", "lfrc"] {
            let (result, leaks) = if scheme == "wfrc" {
                let d = Arc::new(WfrcDomain::<LruCell<u64>>::new(DomainConfig::new(
                    t + 1,
                    cap,
                )));
                run_graph_churn(d, t, args.ops, args.weak_ratio, args.snapshot)
            } else {
                let d = Arc::new(LfrcDomain::<LruCell<u64>>::new(t + 1, cap));
                run_graph_churn(d, t, args.ops, args.weak_ratio, args.snapshot)
            };
            // The acceptance gate rides the bench itself: a soak that
            // leaks weak counts is a broken run, not a data point.
            assert!(leaks.is_clean(), "{scheme} t={t}: {leaks:?}");
            assert_eq!(leaks.weak_count, 0, "{scheme} t={t}: {leaks:?}");
            let c = &result.counters;
            table.row(&[
                t.to_string(),
                scheme.to_string(),
                wfrc_sim::stats::fmt_ops(result.ops_per_sec()),
                c.weak_upgrades.to_string(),
                c.upgrade_failed.to_string(),
                fail_rate(c.upgrade_failed, c.weak_upgrades),
                leaks.weak_count.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "note: every row asserts a clean teardown (weak_count == 0) before printing;\n\
         failed upgrades are the expected race losses against release-to-zero, not errors.\n"
    );
    if args.json {
        println!("{}", table.to_json());
    }
}
