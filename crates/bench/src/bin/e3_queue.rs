//! E3 — Michael–Scott queue enqueue/dequeue pairs across all four
//! reclamation schemes.
//!
//! Same expected shape as E2; the queue adds the lagging-tail dereference
//! pattern, which stresses `DeRefLink` on links *inside* retired nodes —
//! the case reference counting handles naturally.
//!
//! ```text
//! cargo run --release --bin e3_queue [-- --threads 1,2,4,8 --ops 20000 --json]
//! ```

use std::sync::Arc;

use bench::drivers::{run_queue_ebr, run_queue_hp, run_queue_rc};
use bench::Args;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_sim::stats::{fmt_ops, Table};
use wfrc_structures::queue::QueueCell;

fn main() {
    let args = Args::parse(&[1, 2, 4, 8], 20_000);
    const PREFILL: usize = 64;
    let mut table = Table::new(
        "E3: Michael-Scott queue enqueue/dequeue pairs (ops/s)",
        &["threads", "wfrc", "lfrc", "hazard", "epoch"],
    );
    for &t in &args.threads {
        let cap = PREFILL + t * 16 + 64;
        let wf = run_queue_rc(
            Arc::new(WfrcDomain::<QueueCell<u64>>::new(DomainConfig::new(
                t + 1,
                cap,
            ))),
            t,
            args.ops,
            PREFILL,
        );
        let lf = run_queue_rc(
            Arc::new(LfrcDomain::<QueueCell<u64>>::new(t + 1, cap)),
            t,
            args.ops,
            PREFILL,
        );
        let hp = run_queue_hp(t, args.ops, PREFILL);
        let ebr = run_queue_ebr(t, args.ops, PREFILL);
        table.row(&[
            t.to_string(),
            fmt_ops(wf.ops_per_sec()),
            fmt_ops(lf.ops_per_sec()),
            fmt_ops(hp.ops_per_sec()),
            fmt_ops(ebr.ops_per_sec()),
        ]);
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}
