//! E1 — the paper's §5 experiment: skiplist priority queue throughput,
//! wait-free memory management vs. the default lock-free scheme.
//!
//! Paper claim: "asymptotically similar performance behavior in average".
//! Expected shape: the two columns track each other within a small constant
//! factor at every thread count, with WFRC paying its announcement +
//! O(N)-helping overhead and LFRC paying retry storms.
//!
//! ```text
//! cargo run --release --bin e1_priority_queue [-- --threads 1,2,4,8 --ops 20000 --json]
//! ```

use std::sync::Arc;

use bench::drivers::{capacity_for, run_pq_rc};
use bench::Args;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_sim::stats::{fmt_ops, Table};
use wfrc_sim::workload::WorkloadCfg;
use wfrc_structures::priority_queue::PqCell;

fn main() {
    let args = Args::parse(&[1, 2, 4, 8], 20_000);
    let cfg = WorkloadCfg::e1_default();
    let mut table = Table::new(
        "E1: priority queue, 50% insert / 50% delete-min (ops/s; paper §5: WFRC ≈ LFRC on average)",
        &[
            "threads",
            "wfrc ops/s",
            "lfrc ops/s",
            "wfrc/lfrc",
            "wfrc helps",
            "lfrc max deref retries",
        ],
    );
    for &t in &args.threads {
        let cap = capacity_for(&cfg, t, args.ops);
        let wf = {
            let d = Arc::new(WfrcDomain::<PqCell<u64>>::new(DomainConfig::new(
                t + 1,
                cap,
            )));
            run_pq_rc(d, t, args.ops, cfg)
        };
        let lf = {
            let d = Arc::new(LfrcDomain::<PqCell<u64>>::new(t + 1, cap));
            run_pq_rc(d, t, args.ops, cfg)
        };
        table.row(&[
            t.to_string(),
            fmt_ops(wf.ops_per_sec()),
            fmt_ops(lf.ops_per_sec()),
            format!("{:.2}", wf.ops_per_sec() / lf.ops_per_sec()),
            wf.counters.help_calls.to_string(),
            lf.counters.max_deref_retries.to_string(),
        ]);
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}
