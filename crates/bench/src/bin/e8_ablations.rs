//! E8 — ablations of the wait-free scheme's design choices.
//!
//! The three ablations are **compile-time** (they change the algorithms'
//! data layout or code paths), so this binary reports the configuration it
//! was built with and runs the standard E1/E5 cells; compare runs:
//!
//! ```text
//! cargo run --release --bin e8_ablations                                     # baseline
//! cargo run --release --bin e8_ablations --features ablation-no-helping     # E8(a)
//! cargo run --release --bin e8_ablations --features ablation-no-pad         # E8(b)
//! cargo run --release --bin e8_ablations --features ablation-relaxed-mmref  # E8(c)
//! ```
//!
//! * (a) without alloc helping the free-list degenerates to lock-free:
//!   `max alloc iters` loses its bound (and gifts drop to zero);
//! * (b) without padding, false sharing on the announcement matrices and
//!   free-list heads taxes every operation;
//! * (c) `AcqRel` on `mm_ref` shaves fence cost off every count update —
//!   the measurable price of the conservative `SeqCst` default.

use std::sync::Arc;

use bench::drivers::{capacity_for, run_alloc_churn, run_pq_rc};
use bench::Args;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_sim::stats::{fmt_ops, Table};
use wfrc_sim::workload::WorkloadCfg;
use wfrc_structures::priority_queue::PqCell;

fn config_name() -> &'static str {
    if cfg!(feature = "ablation-no-helping") {
        "no-alloc-helping (E8a)"
    } else if cfg!(feature = "ablation-no-pad") {
        "no-pad (E8b)"
    } else if cfg!(feature = "ablation-relaxed-mmref") {
        "relaxed-mmref (E8c)"
    } else {
        "baseline"
    }
}

fn main() {
    let args = Args::parse(&[1, 4], 20_000);
    println!("build configuration: {}\n", config_name());
    let cfg = WorkloadCfg::e1_default();
    let mut table = Table::new(
        format!("E8 [{}]: PQ throughput + free-list churn", config_name()),
        &[
            "threads",
            "pq ops/s",
            "churn ops/s",
            "max alloc iters",
            "gifts given",
            "scan skips",
            "skip rate",
        ],
    );
    for &t in &args.threads {
        let cap = capacity_for(&cfg, t, args.ops);
        let pq = run_pq_rc(
            Arc::new(WfrcDomain::<PqCell<u64>>::new(DomainConfig::new(
                t + 1,
                cap,
            ))),
            t,
            args.ops,
            cfg,
        );
        let churn = run_alloc_churn(
            Arc::new(WfrcDomain::<u64>::new(DomainConfig::new(t, t * 4 + 8))),
            t,
            args.ops * 4,
        );
        // Announcement-summary effectiveness for the PQ workload (the churn
        // workload never touches links, so its help scan is never entered).
        let skips = pq.counters.help_scan_skips;
        let full = pq.counters.help_scan_full;
        let skip_rate = if skips + full == 0 {
            "n/a".to_string()
        } else {
            format!("{:.4}", skips as f64 / (skips + full) as f64)
        };
        table.row(&[
            t.to_string(),
            fmt_ops(pq.ops_per_sec()),
            fmt_ops(churn.ops_per_sec()),
            churn.counters.max_alloc_iters.to_string(),
            churn.counters.alloc_gave_gift.to_string(),
            skips.to_string(),
            skip_rate,
        ]);
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}
