//! E8 — ablations of the wait-free scheme's design choices.
//!
//! The three ablations are **compile-time** (they change the algorithms'
//! data layout or code paths), so this binary reports the configuration it
//! was built with and runs the standard E1/E5 cells; compare runs:
//!
//! ```text
//! cargo run --release --bin e8_ablations                                     # baseline
//! cargo run --release --bin e8_ablations --features ablation-no-helping     # E8(a)
//! cargo run --release --bin e8_ablations --features ablation-no-pad         # E8(b)
//! cargo run --release --bin e8_ablations --features ablation-relaxed-mmref  # E8(c)
//! ```
//!
//! * (a) without alloc helping the free-list degenerates to lock-free:
//!   `max alloc iters` loses its bound (and gifts drop to zero);
//! * (b) without padding, false sharing on the announcement matrices and
//!   free-list heads taxes every operation;
//! * (c) `AcqRel` on `mm_ref` shaves fence cost off every count update —
//!   the measurable price of the conservative `SeqCst` default.
//!
//! A fourth, **runtime** ablation — `--mode snapshot` — compares the
//! counted dereference against the PR 9 pinned plain-load snapshot path
//! and times the deferred-list drain; see [`snapshot_table`].

use std::sync::Arc;

use bench::drivers::{
    capacity_for, run_alloc_churn, run_deferred_drain_micro, run_deref_interference,
    run_deref_interference_snapshot, run_pq_rc,
};
use bench::Args;
use wfrc_core::counters::CounterSnapshot;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_sim::stats::{fmt_ns, fmt_ops, Summary, Table};
use wfrc_sim::workload::WorkloadCfg;
use wfrc_structures::priority_queue::PqCell;

fn config_name() -> &'static str {
    if cfg!(feature = "ablation-no-helping") {
        "no-alloc-helping (E8a)"
    } else if cfg!(feature = "ablation-no-pad") {
        "no-pad (E8b)"
    } else if cfg!(feature = "ablation-relaxed-mmref") {
        "relaxed-mmref (E8c)"
    } else {
        "baseline"
    }
}

/// E8 (snapshot, PR 9): a **runtime** ablation — the same reader workload
/// with the counted dereference vs. the pinned plain-load snapshot path,
/// plus the deferred-drain latency micro. The `count FAAs/op` column is
/// the counters-grounded cost model: the counted path performs one
/// `mm_ref` fetch-add on dereference and one on release (`deref_calls +
/// releases`, ≈2/op); the snapshot path performs zero (its per-session
/// epoch bump and pin-bit write amortize over
/// [`SNAPSHOT_REPIN`](bench::drivers::SNAPSHOT_REPIN) ops) — every FAA
/// shown avoided is a `SeqCst` RMW off the read path. The drain row
/// forces up to 4096 frees onto the deferred
/// list under a parked foreign pin, then times the wholesale drain after
/// the pin drops.
fn snapshot_table(args: &Args) {
    /// Count-field fetch-adds per reader op, from the reader's counters.
    fn faas_per_op(c: &CounterSnapshot, ops: u64) -> String {
        format!("{:.3}", (c.deref_calls + c.releases) as f64 / ops as f64)
    }
    let mut table = Table::new(
        "E8 (snapshot): counted vs plain-load reads + deferred-drain latency",
        &[
            "variant",
            "writers",
            "reader ops/s",
            "mean",
            "p99",
            "count FAAs/op",
            "snapshot derefs",
            "deferred decs",
        ],
    );
    for &w in &args.threads {
        let d = Arc::new(WfrcDomain::<u64>::new(DomainConfig::new(w + 2, 16)));
        let (res, hist, c) = run_deref_interference(d, w, args.ops);
        let s = Summary::of(&hist);
        table.row(&[
            "counted deref".into(),
            w.to_string(),
            fmt_ops(res.ops_per_sec()),
            fmt_ns(s.mean as u64),
            fmt_ns(s.p99),
            faas_per_op(&c, args.ops),
            c.snapshot_derefs.to_string(),
            c.deferred_decs.to_string(),
        ]);
        let d = Arc::new(WfrcDomain::<u64>::new(DomainConfig::new(w + 2, 16)));
        let (res, hist, c) = run_deref_interference_snapshot(d, w, args.ops);
        let s = Summary::of(&hist);
        table.row(&[
            "snapshot deref".into(),
            w.to_string(),
            fmt_ops(res.ops_per_sec()),
            fmt_ns(s.mean as u64),
            fmt_ns(s.p99),
            faas_per_op(&c, args.ops),
            c.snapshot_derefs.to_string(),
            c.deferred_decs.to_string(),
        ]);
    }
    let drain_nodes = (args.ops as usize).clamp(64, 4096);
    let (drained, wall, c) = run_deferred_drain_micro(drain_nodes);
    assert_eq!(
        drained, drain_nodes,
        "drain must recover every deferred node"
    );
    table.row(&[
        format!("deferred drain ({drain_nodes} nodes)"),
        "-".into(),
        "-".into(),
        fmt_ns((wall.as_nanos() as u64) / drain_nodes as u64),
        "-".into(),
        "-".into(),
        c.snapshot_derefs.to_string(),
        c.deferred_decs.to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "note: counted FAAs/op counts mm_ref fetch-adds (deref + release); the snapshot\n\
         rows' 0.000 is the ablation's claim — >=2 SeqCst RMWs avoided per deref. The\n\
         drain row's mean is ns/node for the post-unpin wholesale drain; its deferred\n\
         decs confirm every free was diverted while the foreign pin was live.\n"
    );
    if args.json {
        println!("{}", table.to_json());
    }
}

fn main() {
    let args = Args::parse(&[1, 4], 20_000);
    if args.mode == "snapshot" {
        snapshot_table(&args);
        return;
    }
    println!("build configuration: {}\n", config_name());
    let cfg = WorkloadCfg::e1_default();
    let mut table = Table::new(
        format!("E8 [{}]: PQ throughput + free-list churn", config_name()),
        &[
            "threads",
            "pq ops/s",
            "churn ops/s",
            "max alloc iters",
            "gifts given",
            "scan skips",
            "skip rate",
        ],
    );
    for &t in &args.threads {
        let cap = capacity_for(&cfg, t, args.ops);
        let pq = run_pq_rc(
            Arc::new(WfrcDomain::<PqCell<u64>>::new(DomainConfig::new(
                t + 1,
                cap,
            ))),
            t,
            args.ops,
            cfg,
        );
        let churn = run_alloc_churn(
            Arc::new(WfrcDomain::<u64>::new(DomainConfig::new(t, t * 4 + 8))),
            t,
            args.ops * 4,
        );
        // Announcement-summary effectiveness for the PQ workload (the churn
        // workload never touches links, so its help scan is never entered).
        let skips = pq.counters.help_scan_skips;
        let full = pq.counters.help_scan_full;
        let skip_rate = if skips + full == 0 {
            "n/a".to_string()
        } else {
            format!("{:.4}", skips as f64 / (skips + full) as f64)
        };
        table.row(&[
            t.to_string(),
            fmt_ops(pq.ops_per_sec()),
            fmt_ops(churn.ops_per_sec()),
            churn.counters.max_alloc_iters.to_string(),
            churn.counters.alloc_gave_gift.to_string(),
            skips.to_string(),
            skip_rate,
        ]);
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}
