//! E10 — chaos: a rotating victim is killed, parked, or stalled
//! mid-operation, round after round, against one long-lived domain —
//! and every recovery is performed by the sentinel, never by hand.
//!
//! Every round arms all eight `FaultSite`s for one victim thread with a
//! per-hit probability and runs the victim's churn against survivor
//! threads while a dedicated supervisor thread ticks a
//! [`wfrc_core::Sentinel`] over the domain. A killed victim's slot is
//! detected by the heartbeat ladder and adopted autonomously; the harness
//! only *waits* for `WfrcDomain::orphans_adopted` to advance and records
//! the MTTR (victim join observed → adoption complete). A parked victim
//! is released and exits cleanly — the ladder may suspect it, but its
//! live registration is never seized. After every round the shared links
//! are cleared and `WfrcDomain::leak_check` must be spotless — one
//! corrupt or leaked node anywhere ends the run with a panic.
//!
//! Victims and survivors also attempt segment reclamation mid-churn (so
//! the `SegmentRetire` fault site gets real kills, mid-`DRAINING`), and
//! every round ends by shrinking the arena back to its capacity floor —
//! the next round regrows it, cycling retire/revive under chaos.
//!
//! The loop runs until it has seen at least `--rounds` kill/adopt cycles
//! AND `--secs` seconds have elapsed (both bounds must be met), so the
//! default invocation is a 30-second soak with ≥ 20 adoptions.
//!
//! ```text
//! cargo run --release --features fault-injection --bin e10_chaos \
//!     [-- --seed 42 --secs 30 --rounds 20 --json]
//! ```
//!
//! Without `--features fault-injection` the binary only explains itself:
//! the default build contains none of the injection hooks.

#[cfg(not(feature = "fault-injection"))]
fn main() {
    eprintln!("e10_chaos needs the fault-injection feature:");
    eprintln!("  cargo run --release --features fault-injection --bin e10_chaos");
    std::process::exit(2);
}

#[cfg(feature = "fault-injection")]
fn main() {
    chaos::run();
}

#[cfg(feature = "fault-injection")]
mod chaos {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use wfrc_core::fault::silence_injected_deaths;
    use wfrc_core::{
        DomainConfig, FaultAction, FaultPlan, FaultSite, FireRule, Growth, InjectedDeath, Link,
        ReclaimOutcome, Sentinel, SentinelConfig, WfrcDomain,
    };
    use wfrc_sim::stats::Table;
    use wfrc_sim::{Histogram, Supervisor};

    const THREADS: usize = 4;
    // Deliberately below the churn's working set (the victim alone holds
    // up to 48 nodes): every round grows the arena past the floor, and
    // the end-of-round shrink has real segments to retire.
    const CAPACITY: usize = 16;
    const LINKS: usize = 8;
    const VICTIM_OPS: usize = 50_000;
    const SURVIVOR_OPS: usize = 5_000;
    const CHANCE: f64 = 0.02;
    /// Supervisor tick cadence. The ladder needs `help_after` stale
    /// examinations before it adopts, so MTTR floors at a few periods.
    const TICK_PERIOD: Duration = Duration::from_micros(200);
    /// A kill the sentinel has not healed within this bound is a bug.
    const MTTR_DEADLINE: Duration = Duration::from_secs(5);

    struct Cfg {
        seed: u64,
        secs: u64,
        rounds: u64,
        json: bool,
    }

    fn parse() -> Cfg {
        let mut cfg = Cfg {
            seed: 0xC5A0_5EED,
            secs: 30,
            rounds: 20,
            json: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            let mut num = |name: &str| -> u64 {
                it.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} needs an integer"))
            };
            match a.as_str() {
                "--seed" => cfg.seed = num("--seed"),
                "--secs" => cfg.secs = num("--secs"),
                "--rounds" => cfg.rounds = num("--rounds"),
                "--json" => cfg.json = true,
                other => panic!(
                    "unknown arg {other}; usage: e10_chaos [--seed N] [--secs N] [--rounds N] [--json]"
                ),
            }
        }
        cfg
    }

    /// The victim's churn: alloc/store/deref/release across the shared
    /// links with a bounded held pile, so every fault site gets hit. Exits
    /// early once a fault fired this round (a parked victim resumes here
    /// after release and leaves promptly).
    fn victim_churn(h: wfrc_core::ThreadHandle<'_, u64>, links: &[Link<u64>], plan: &FaultPlan) {
        let baseline = plan.injected();
        let mut held = Vec::new();
        for i in 0..VICTIM_OPS {
            if plan.injected() > baseline {
                break;
            }
            if let Ok(g) = h.alloc_with(|v| *v = i as u64) {
                h.store(&links[i % links.len()], Some(&g));
                if held.len() < 48 {
                    held.push(g);
                }
            }
            if let Some(g) = h.deref(&links[(i + 1) % links.len()]) {
                std::hint::black_box(*g);
            }
            if i % 5 == 4 {
                held.pop();
            }
            // Periodic reclaim attempts put the victim on the retire path,
            // so the SegmentRetire fault site fires mid-DRAINING and the
            // round's adoption has a half-claimed segment to reopen.
            // Dropping the held pile and the shared links first gives the
            // trailing segment a real chance of being fully free (the
            // retire claim — and the fault site behind it — is
            // unreachable otherwise; fresh allocations come from the tail,
            // so a populated link almost always pins it). The beat must be
            // tight: armed rounds end at the first injected fault, which
            // the hot sites deliver within a few dozen iterations.
            if i % 48 == 47 {
                held.clear();
                for l in links {
                    h.store(l, None);
                }
                let _ = h.reclaim();
            }
        }
    }

    fn survivor_churn(h: wfrc_core::ThreadHandle<'_, u64>, links: &[Link<u64>]) {
        for i in 0..SURVIVOR_OPS {
            if let Ok(g) = h.alloc_with(|v| *v = i as u64) {
                h.store(&links[i % links.len()], Some(&g));
            }
            if let Some(g) = h.deref(&links[(i + 3) % links.len()]) {
                std::hint::black_box(*g);
            }
            // Survivors also try to shrink under full traffic; any outcome
            // is legal and the end-of-round audit settles the books.
            if i % 1024 == 1023 {
                let _ = h.reclaim();
            }
        }
    }

    pub fn run() {
        silence_injected_deaths();
        let cfg = parse();
        let mut domain = WfrcDomain::<u64>::new(
            DomainConfig::new(THREADS, CAPACITY)
                .with_magazine(8)
                .with_growth(Growth::doubling_to(1 << 14)),
        );
        let links: Vec<Link<u64>> = (0..LINKS).map(|_| Link::null()).collect();

        let start = Instant::now();
        let deadline = Duration::from_secs(cfg.secs);
        let mut rounds = 0u64;
        let mut kills = 0u64;
        let mut park_rounds = 0u64;
        let mut stall_rounds = 0u64;
        let mut clean_exits = 0u64;
        let mut kills_by_site = [0u64; FaultSite::ALL.len()];
        let mut faults_total = 0u64;
        let mut mttr = Histogram::new();
        let mut sentinel_ticks = 0u64;
        let mut sentinel_helps = 0u64;
        let mut sentinel_probes = 0u64;
        let mut sentinel_suspects = 0u64;
        let mut sentinel_declared = 0u64;
        let mut sentinel_recovered = 0u64;
        let mut sentinel_exonerated = 0u64;

        while kills < cfg.rounds || start.elapsed() < deadline {
            let round = rounds;
            rounds += 1;
            let victim_tid = (round as usize) % THREADS;
            // Kill twice as often as park/stall so the kill quota and the
            // wall-clock bound finish in the same ballpark.
            let action = match round % 4 {
                0 | 1 => FaultAction::Die,
                2 => FaultAction::Park,
                _ => FaultAction::Stall(2_000),
            };
            // A fresh per-round seed: `Chance` decisions are a pure function
            // of (seed, site, hit ordinal), so reusing one seed would replay
            // the same schedule every round and the busiest site would soak
            // up every kill.
            let plan = Arc::new(FaultPlan::new(
                cfg.seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
            domain.set_fault_plan(Arc::clone(&plan));
            // Die rounds rotate a boosted "focus" site so kill coverage
            // reaches the rare sites (a one-time growth seeding, a helper's
            // answer CAS), not just the hot paths; the rest stay armed as
            // background noise.
            let focus = FaultSite::ALL[((round / 4) as usize) % FaultSite::ALL.len()];
            for site in FaultSite::ALL {
                let p = match action {
                    FaultAction::Die if site == focus => 10.0 * CHANCE,
                    FaultAction::Die => CHANCE / 4.0,
                    _ => CHANCE,
                };
                plan.arm_victim(victim_tid, site, action, FireRule::Chance(p));
            }

            let mut handles: Vec<_> = (0..THREADS)
                .map(|_| register_with_retry(&domain, round))
                .collect();
            // Handles come out in slot order; pull the victim's out.
            let victim = handles.remove(victim_tid);
            assert_eq!(victim.tid(), victim_tid);

            // The round's autonomous recovery plane: a supervisor thread
            // ticks the sentinel while the churn runs. No code below ever
            // calls `adopt_orphans` — a kill heals only because the ladder
            // escalates the dead slot and routes it through `help`.
            let sentinel = Sentinel::new(
                &domain,
                SentinelConfig::default().with_seed(cfg.seed ^ round.rotate_left(17)),
            );
            let adopted_before = domain.orphans_adopted();

            let died = std::thread::scope(|s| {
                let sup = Supervisor::spawn_scoped(s, TICK_PERIOD, || sentinel.tick());
                let links_ref = &links;
                let plan_ref: &FaultPlan = &plan;
                let vt = s.spawn(move || victim_churn(victim, links_ref, plan_ref));
                let survivors: Vec<_> = handles
                    .into_iter()
                    .map(|h| s.spawn(move || survivor_churn(h, links_ref)))
                    .collect();
                for t in survivors {
                    t.join().expect("survivors never die");
                }
                if matches!(action, FaultAction::Park) {
                    // Keep releasing: a Chance rule can re-park the victim.
                    while !vt.is_finished() {
                        plan.release();
                        std::thread::yield_now();
                    }
                }
                let died = match vt.join() {
                    Ok(()) => None,
                    Err(err) => {
                        let death = err
                            .downcast::<InjectedDeath>()
                            .expect("victims only die by injection");
                        Some(death.site)
                    }
                };
                if died.is_some() {
                    // Time-to-recovery: the join above is the moment an
                    // operator could first *observe* the death; the sentinel
                    // may already have adopted mid-churn (MTTR ~ 0) or may
                    // still be walking its ladder.
                    let t0 = Instant::now();
                    while domain.orphans_adopted() <= adopted_before {
                        assert!(
                            t0.elapsed() < MTTR_DEADLINE,
                            "round {round}: sentinel failed to adopt a kill within {MTTR_DEADLINE:?} (seed {:#x})",
                            plan.seed()
                        );
                        std::thread::yield_now();
                    }
                    mttr.record(t0.elapsed().as_nanos() as u64);
                }
                sup.stop();
                died
            });

            let snap = sentinel.stats();
            sentinel_ticks += snap.ticks;
            sentinel_helps += snap.helps;
            sentinel_probes += snap.probes;
            sentinel_suspects += snap.suspects;
            sentinel_declared += snap.declared_dead;
            sentinel_recovered += snap.dead_recovered;
            sentinel_exonerated += snap.exonerated;
            drop(sentinel);

            match died {
                Some(site) => {
                    kills += 1;
                    kills_by_site[site as usize] += 1;
                }
                None => {
                    clean_exits += 1;
                    match action {
                        FaultAction::Park => park_rounds += 1,
                        FaultAction::Stall(_) => stall_rounds += 1,
                        FaultAction::Die => {}
                    }
                }
            }

            // End-of-round audit: clear the shared links, shrink the arena
            // back to its floor (the round is quiescent, so every grown
            // segment must retire — next round regrows from scratch, which
            // cycles retire/revive under chaos every round), and the domain
            // must account for every node.
            faults_total += plan.injected();
            plan.disarm();
            {
                let sweeper = register_with_retry(&domain, round);
                for l in &links {
                    sweeper.store(l, None);
                }
                let mut stalls = 0;
                loop {
                    match sweeper.reclaim() {
                        ReclaimOutcome::Retired { .. } => stalls = 0,
                        ReclaimOutcome::NoCandidate => break,
                        outcome => {
                            stalls += 1;
                            assert!(
                                stalls < 1_000,
                                "round {round}: quiescent reclaim stuck on {outcome:?}"
                            );
                            std::thread::yield_now();
                        }
                    }
                }
            }
            let leaks = domain.leak_check();
            assert!(leaks.is_clean(), "round {round} leaked: {leaks:?}");
        }

        let elapsed = start.elapsed();
        let mut table = Table::new(
            "E10: chaos soak — sentinel-only recovery, rotating victim killed/parked/stalled",
            &["metric", "value"],
        );
        table.row(&["seed".into(), format!("{:#x}", cfg.seed)]);
        table.row(&["rounds".into(), rounds.to_string()]);
        table.row(&["kills (sentinel-adopted)".into(), kills.to_string()]);
        table.row(&["park rounds survived".into(), park_rounds.to_string()]);
        table.row(&["stall rounds survived".into(), stall_rounds.to_string()]);
        table.row(&["clean victim exits".into(), clean_exits.to_string()]);
        table.row(&["faults injected".into(), faults_total.to_string()]);
        table.row(&[
            "orphan nodes recovered".into(),
            domain.orphan_nodes_recovered().to_string(),
        ]);
        table.row(&[
            "mttr p50 µs".into(),
            (mttr.quantile(0.50) / 1_000).to_string(),
        ]);
        table.row(&[
            "mttr p99 µs".into(),
            (mttr.quantile(0.99) / 1_000).to_string(),
        ]);
        table.row(&["mttr max µs".into(), (mttr.max() / 1_000).to_string()]);
        table.row(&["sentinel ticks".into(), sentinel_ticks.to_string()]);
        table.row(&["sentinel helps".into(), sentinel_helps.to_string()]);
        table.row(&["sentinel probes".into(), sentinel_probes.to_string()]);
        table.row(&["sentinel suspects".into(), sentinel_suspects.to_string()]);
        table.row(&[
            "sentinel declared dead".into(),
            sentinel_declared.to_string(),
        ]);
        table.row(&[
            "sentinel dead recovered".into(),
            sentinel_recovered.to_string(),
        ]);
        table.row(&[
            "sentinel exonerated".into(),
            sentinel_exonerated.to_string(),
        ]);
        for site in FaultSite::ALL {
            table.row(&[
                format!("kills at {}", site.name()),
                kills_by_site[site as usize].to_string(),
            ]);
        }
        table.row(&[
            "segments retired (elastic)".into(),
            domain.segments_retired().to_string(),
        ]);
        table.row(&[
            "segments revived".into(),
            domain.segments_revived().to_string(),
        ]);
        table.row(&[
            "segments poisoned".into(),
            domain.segments_poisoned().to_string(),
        ]);
        table.row(&["capacity (grown)".into(), domain.capacity().to_string()]);
        table.row(&["elapsed s".into(), format!("{:.1}", elapsed.as_secs_f64())]);
        table.row(&["manual recovery calls".into(), "0".into()]);
        table.row(&["leak check".into(), "clean every round".into()]);
        println!("{}", table.render());
        if cfg.json {
            println!("{}", table.to_json());
        }
    }

    /// Registers a handle, retrying briefly: the sentinel frees a dead
    /// victim's slot asynchronously, so the next round's registration can
    /// race the tail of an adoption.
    fn register_with_retry<'d>(
        domain: &'d WfrcDomain<u64>,
        round: u64,
    ) -> wfrc_core::ThreadHandle<'d, u64> {
        let t0 = Instant::now();
        loop {
            match domain.register() {
                Ok(h) => return h,
                Err(_) => {
                    assert!(
                        t0.elapsed() < MTTR_DEADLINE,
                        "round {round}: registry still full — adoption stalled"
                    );
                    std::thread::yield_now();
                }
            }
        }
    }
}
