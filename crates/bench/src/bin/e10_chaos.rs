//! E10 — chaos: a rotating victim is killed, parked, or stalled
//! mid-operation, round after round, against one long-lived domain.
//!
//! Every round arms all eight `FaultSite`s for one victim thread with a
//! per-hit probability, runs the victim's churn against survivor threads,
//! and then recovers: a killed victim's slot is adopted
//! (`WfrcDomain::adopt_orphans`) and its parked nodes counted; a parked
//! victim is released and exits cleanly. After every round the shared
//! links are cleared and `WfrcDomain::leak_check` must be spotless —
//! one corrupt or leaked node anywhere ends the run with a panic.
//!
//! Victims and survivors also attempt segment reclamation mid-churn (so
//! the `SegmentRetire` fault site gets real kills, mid-`DRAINING`), and
//! every round ends by shrinking the arena back to its capacity floor —
//! the next round regrows it, cycling retire/revive under chaos.
//!
//! The loop runs until it has seen at least `--rounds` kill/adopt cycles
//! AND `--secs` seconds have elapsed (both bounds must be met), so the
//! default invocation is a 30-second soak with ≥ 20 adoptions.
//!
//! ```text
//! cargo run --release --features fault-injection --bin e10_chaos \
//!     [-- --seed 42 --secs 30 --rounds 20 --json]
//! ```
//!
//! Without `--features fault-injection` the binary only explains itself:
//! the default build contains none of the injection hooks.

#[cfg(not(feature = "fault-injection"))]
fn main() {
    eprintln!("e10_chaos needs the fault-injection feature:");
    eprintln!("  cargo run --release --features fault-injection --bin e10_chaos");
    std::process::exit(2);
}

#[cfg(feature = "fault-injection")]
fn main() {
    chaos::run();
}

#[cfg(feature = "fault-injection")]
mod chaos {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use wfrc_core::fault::silence_injected_deaths;
    use wfrc_core::{
        DomainConfig, FaultAction, FaultPlan, FaultSite, FireRule, Growth, InjectedDeath, Link,
        ReclaimOutcome, WfrcDomain,
    };
    use wfrc_sim::stats::Table;

    const THREADS: usize = 4;
    // Deliberately below the churn's working set (the victim alone holds
    // up to 48 nodes): every round grows the arena past the floor, and
    // the end-of-round shrink has real segments to retire.
    const CAPACITY: usize = 16;
    const LINKS: usize = 8;
    const VICTIM_OPS: usize = 50_000;
    const SURVIVOR_OPS: usize = 5_000;
    const CHANCE: f64 = 0.02;

    struct Cfg {
        seed: u64,
        secs: u64,
        rounds: u64,
        json: bool,
    }

    fn parse() -> Cfg {
        let mut cfg = Cfg {
            seed: 0xC5A0_5EED,
            secs: 30,
            rounds: 20,
            json: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            let mut num = |name: &str| -> u64 {
                it.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} needs an integer"))
            };
            match a.as_str() {
                "--seed" => cfg.seed = num("--seed"),
                "--secs" => cfg.secs = num("--secs"),
                "--rounds" => cfg.rounds = num("--rounds"),
                "--json" => cfg.json = true,
                other => panic!(
                    "unknown arg {other}; usage: e10_chaos [--seed N] [--secs N] [--rounds N] [--json]"
                ),
            }
        }
        cfg
    }

    /// The victim's churn: alloc/store/deref/release across the shared
    /// links with a bounded held pile, so every fault site gets hit. Exits
    /// early once a fault fired this round (a parked victim resumes here
    /// after release and leaves promptly).
    fn victim_churn(h: wfrc_core::ThreadHandle<'_, u64>, links: &[Link<u64>], plan: &FaultPlan) {
        let baseline = plan.injected();
        let mut held = Vec::new();
        for i in 0..VICTIM_OPS {
            if plan.injected() > baseline {
                break;
            }
            if let Ok(g) = h.alloc_with(|v| *v = i as u64) {
                h.store(&links[i % links.len()], Some(&g));
                if held.len() < 48 {
                    held.push(g);
                }
            }
            if let Some(g) = h.deref(&links[(i + 1) % links.len()]) {
                std::hint::black_box(*g);
            }
            if i % 5 == 4 {
                held.pop();
            }
            // Periodic reclaim attempts put the victim on the retire path,
            // so the SegmentRetire fault site fires mid-DRAINING and the
            // round's adoption has a half-claimed segment to reopen.
            // Dropping the held pile and the shared links first gives the
            // trailing segment a real chance of being fully free (the
            // retire claim — and the fault site behind it — is
            // unreachable otherwise; fresh allocations come from the tail,
            // so a populated link almost always pins it). The beat must be
            // tight: armed rounds end at the first injected fault, which
            // the hot sites deliver within a few dozen iterations.
            if i % 48 == 47 {
                held.clear();
                for l in links {
                    h.store(l, None);
                }
                let _ = h.reclaim();
            }
        }
    }

    fn survivor_churn(h: wfrc_core::ThreadHandle<'_, u64>, links: &[Link<u64>]) {
        for i in 0..SURVIVOR_OPS {
            if let Ok(g) = h.alloc_with(|v| *v = i as u64) {
                h.store(&links[i % links.len()], Some(&g));
            }
            if let Some(g) = h.deref(&links[(i + 3) % links.len()]) {
                std::hint::black_box(*g);
            }
            // Survivors also try to shrink under full traffic; any outcome
            // is legal and the end-of-round audit settles the books.
            if i % 1024 == 1023 {
                let _ = h.reclaim();
            }
        }
    }

    pub fn run() {
        silence_injected_deaths();
        let cfg = parse();
        let mut domain = WfrcDomain::<u64>::new(
            DomainConfig::new(THREADS, CAPACITY)
                .with_magazine(8)
                .with_growth(Growth::doubling_to(1 << 14)),
        );
        let links: Vec<Link<u64>> = (0..LINKS).map(|_| Link::null()).collect();

        let start = Instant::now();
        let deadline = Duration::from_secs(cfg.secs);
        let mut rounds = 0u64;
        let mut kills = 0u64;
        let mut park_rounds = 0u64;
        let mut stall_rounds = 0u64;
        let mut clean_exits = 0u64;
        let mut nodes_recovered = 0usize;
        let mut kills_by_site = [0u64; FaultSite::ALL.len()];
        let mut adopt_us_total = 0u128;
        let mut adopt_us_max = 0u128;
        let mut faults_total = 0u64;

        while kills < cfg.rounds || start.elapsed() < deadline {
            let round = rounds;
            rounds += 1;
            let victim_tid = (round as usize) % THREADS;
            // Kill twice as often as park/stall so the kill quota and the
            // wall-clock bound finish in the same ballpark.
            let action = match round % 4 {
                0 | 1 => FaultAction::Die,
                2 => FaultAction::Park,
                _ => FaultAction::Stall(2_000),
            };
            // A fresh per-round seed: `Chance` decisions are a pure function
            // of (seed, site, hit ordinal), so reusing one seed would replay
            // the same schedule every round and the busiest site would soak
            // up every kill.
            let plan = Arc::new(FaultPlan::new(
                cfg.seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
            domain.set_fault_plan(Arc::clone(&plan));
            // Die rounds rotate a boosted "focus" site so kill coverage
            // reaches the rare sites (a one-time growth seeding, a helper's
            // answer CAS), not just the hot paths; the rest stay armed as
            // background noise.
            let focus = FaultSite::ALL[((round / 4) as usize) % FaultSite::ALL.len()];
            for site in FaultSite::ALL {
                let p = match action {
                    FaultAction::Die if site == focus => 10.0 * CHANCE,
                    FaultAction::Die => CHANCE / 4.0,
                    _ => CHANCE,
                };
                plan.arm_victim(victim_tid, site, action, FireRule::Chance(p));
            }

            let mut handles: Vec<_> = (0..THREADS).map(|_| domain.register().unwrap()).collect();
            // Handles come out in slot order; pull the victim's out.
            let victim = handles.remove(victim_tid);
            assert_eq!(victim.tid(), victim_tid);

            let died = std::thread::scope(|s| {
                let links_ref = &links;
                let plan_ref: &FaultPlan = &plan;
                let vt = s.spawn(move || victim_churn(victim, links_ref, plan_ref));
                let survivors: Vec<_> = handles
                    .into_iter()
                    .map(|h| s.spawn(move || survivor_churn(h, links_ref)))
                    .collect();
                for t in survivors {
                    t.join().expect("survivors never die");
                }
                if matches!(action, FaultAction::Park) {
                    // Keep releasing: a Chance rule can re-park the victim.
                    while !vt.is_finished() {
                        plan.release();
                        std::thread::yield_now();
                    }
                }
                match vt.join() {
                    Ok(()) => None,
                    Err(err) => {
                        let death = err
                            .downcast::<InjectedDeath>()
                            .expect("victims only die by injection");
                        Some(death.site)
                    }
                }
            });

            match died {
                Some(site) => {
                    kills += 1;
                    kills_by_site[site as usize] += 1;
                    let t0 = Instant::now();
                    let report = domain.adopt_orphans();
                    let us = t0.elapsed().as_micros();
                    adopt_us_total += us;
                    adopt_us_max = adopt_us_max.max(us);
                    assert_eq!(
                        report.orphans_adopted, 1,
                        "round {round}: adoption must win"
                    );
                    nodes_recovered += report.nodes_recovered();
                }
                None => {
                    clean_exits += 1;
                    match action {
                        FaultAction::Park => park_rounds += 1,
                        FaultAction::Stall(_) => stall_rounds += 1,
                        FaultAction::Die => {}
                    }
                }
            }

            // End-of-round audit: clear the shared links, shrink the arena
            // back to its floor (the round is quiescent, so every grown
            // segment must retire — next round regrows from scratch, which
            // cycles retire/revive under chaos every round), and the domain
            // must account for every node.
            faults_total += plan.injected();
            plan.disarm();
            {
                let sweeper = domain.register().unwrap();
                for l in &links {
                    sweeper.store(l, None);
                }
                let mut stalls = 0;
                loop {
                    match sweeper.reclaim() {
                        ReclaimOutcome::Retired { .. } => stalls = 0,
                        ReclaimOutcome::NoCandidate => break,
                        outcome => {
                            stalls += 1;
                            assert!(
                                stalls < 1_000,
                                "round {round}: quiescent reclaim stuck on {outcome:?}"
                            );
                            std::thread::yield_now();
                        }
                    }
                }
            }
            let leaks = domain.leak_check();
            assert!(leaks.is_clean(), "round {round} leaked: {leaks:?}");
        }

        let elapsed = start.elapsed();
        let mut table = Table::new(
            "E10: chaos soak — rotating victim killed/parked/stalled mid-operation",
            &["metric", "value"],
        );
        table.row(&["rounds".into(), rounds.to_string()]);
        table.row(&["kills (adopted)".into(), kills.to_string()]);
        table.row(&["park rounds survived".into(), park_rounds.to_string()]);
        table.row(&["stall rounds survived".into(), stall_rounds.to_string()]);
        table.row(&["clean victim exits".into(), clean_exits.to_string()]);
        table.row(&["faults injected".into(), faults_total.to_string()]);
        table.row(&["orphan nodes recovered".into(), nodes_recovered.to_string()]);
        table.row(&[
            "adopt latency mean µs".into(),
            (adopt_us_total / u128::from(kills.max(1))).to_string(),
        ]);
        table.row(&["adopt latency max µs".into(), adopt_us_max.to_string()]);
        for site in FaultSite::ALL {
            table.row(&[
                format!("kills at {}", site.name()),
                kills_by_site[site as usize].to_string(),
            ]);
        }
        table.row(&[
            "segments retired (elastic)".into(),
            domain.segments_retired().to_string(),
        ]);
        table.row(&[
            "segments revived".into(),
            domain.segments_revived().to_string(),
        ]);
        table.row(&["capacity (grown)".into(), domain.capacity().to_string()]);
        table.row(&["elapsed s".into(), format!("{:.1}", elapsed.as_secs_f64())]);
        table.row(&["leak check".into(), "clean every round".into()]);
        println!("{}", table.render());
        if cfg.json {
            println!("{}", table.to_json());
        }
    }
}
