//! E11 — mixed-size allocation across per-size-class arenas.
//!
//! Every worker cycles through all configured byte classes (offset by its
//! thread id, so at any instant different threads hammer different classes
//! and **all classes are live concurrently**), holding a sliding window of
//! live tokens whose first payload byte is verified on every free. The
//! point under test is that the per-class generalization keeps each
//! class's alloc/free independently wait-free: class traffic never
//! serializes on a shared head, and one class's growth or reclamation
//! never stalls another's fast path.
//!
//! With `--grow` the classes start **under-provisioned** (8 blocks each,
//! doubling growth): the run can only finish by publishing per-class
//! segments, exercising the winner-seeds-slab protocol on every class at
//! once. With `--reclaim` a reclaimer then drives
//! [`wfrc_core::ThreadHandle::reclaim_class`] to quiescence per class
//! (LFRC: the stop-the-world `reclaim_class_quiescent`), and the per-class
//! resident curve must return to (at most one segment above) the floor.
//!
//! Every cell ends with a full [`wfrc_core::domain::LeakReport`] audit:
//! the run fails unless **every class** reports zero live blocks and full
//! free-list accounting.
//!
//! ```text
//! cargo run --release --bin e11_mixed_size [-- --threads 2,4,8 --ops 40000 \
//!     --classes 64,256,1024 --grow --reclaim --magazine --json]
//! ```

use std::sync::Arc;

use bench::drivers::{fmt_class_curve, run_mixed_size, run_mixed_size_lfrc, ClassCurve};
use bench::Args;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{ClassConfig, DomainConfig, Growth, WfrcDomain};
use wfrc_sim::stats::{fmt_ops, Table};

/// Tokens held live per thread (the sliding window).
const WINDOW: usize = 32;
/// Under-provisioned per-class start (`--grow`): far below the live peak.
const GROW_INITIAL: usize = 8;

/// Builds the per-class configs for one cell.
fn class_configs(sizes: &[usize], threads: usize, grow: bool, magazine: bool) -> Vec<ClassConfig> {
    sizes
        .iter()
        .map(|&s| {
            let mut cfg = if grow {
                ClassConfig::new(s, GROW_INITIAL).with_growth(Growth::doubling_to(1 << 20))
            } else {
                // Roomy: the window can land entirely in one class.
                ClassConfig::new(s, threads * WINDOW + 64)
            };
            if magazine {
                cfg = cfg.with_magazine(16);
            }
            cfg
        })
        .collect()
}

fn sum(a: &[u64]) -> u64 {
    a.iter().sum()
}

/// `--grow --reclaim` acceptance bar: every class's resident-segment count
/// returns to at most one segment above its floor.
fn assert_classes_returned(scheme: &str, curve: &[ClassCurve], floors: &[usize]) {
    for (c, &floor) in curve.iter().zip(floors) {
        assert!(
            c.resident_after <= floor + 1,
            "{scheme} class {}B: resident {} > floor {floor}+1",
            c.size,
            c.resident_after
        );
    }
}

fn main() {
    let args = Args::parse(&[2, 4, 8], 40_000);
    let sizes: Vec<usize> = if args.classes.is_empty() {
        vec![64, 256, 1024]
    } else {
        args.classes.clone()
    };
    assert!(
        sizes.len() >= 2,
        "E11 needs at least two byte classes (got --classes {sizes:?})"
    );
    let mut table = Table::new(
        "E11: mixed-size churn across per-size-class arenas",
        &[
            "threads",
            "scheme",
            "ops/s",
            "class allocs",
            "class frees",
            "segments grown",
            "class curve",
            "retired",
            "reclaim aborts",
        ],
    );
    for &t in &args.threads {
        {
            let configs = class_configs(&sizes, t, args.grow, args.magazine);
            // +1 thread slot for the reclaimer; tiny node pool — E11 moves
            // raw bytes, not nodes.
            let d = Arc::new(WfrcDomain::<u64>::new(
                DomainConfig::new(t + 1, 64).with_classes(configs),
            ));
            let floors: Vec<usize> = (0..d.class_count()).map(|i| d.class_segments(i)).collect();
            let (r, curve) = run_mixed_size(Arc::clone(&d), t, args.ops, WINDOW, args.reclaim);
            if args.grow && args.reclaim {
                assert_classes_returned("wfrc", &curve, &floors);
            }
            let leak = d.leak_check();
            assert!(
                leak.is_clean(),
                "wfrc mixed-size run must end clean: {leak}"
            );
            assert_eq!(leak.classes.len(), sizes.len(), "every class audited");
            table.row(&[
                t.to_string(),
                "wfrc".into(),
                fmt_ops(r.ops_per_sec()),
                sum(&r.counters.class_allocs).to_string(),
                sum(&r.counters.class_frees).to_string(),
                r.counters.segments_grown.to_string(),
                fmt_class_curve(&curve),
                curve.iter().map(|c| c.retired).sum::<u64>().to_string(),
                curve.iter().map(|c| c.aborted).sum::<u64>().to_string(),
            ]);
        }
        {
            let configs = class_configs(&sizes, t, args.grow, args.magazine);
            let mut d = LfrcDomain::<u64>::new(t, 64);
            d.set_backoff(false);
            d.set_classes(configs);
            let floors: Vec<usize> = (0..d.class_count()).map(|i| d.class_segments(i)).collect();
            let (r, curve) = run_mixed_size_lfrc(&mut d, t, args.ops, WINDOW, args.reclaim);
            if args.grow && args.reclaim {
                assert_classes_returned("lfrc", &curve, &floors);
            }
            let leak = d.leak_check();
            assert!(leak.is_clean(), "lfrc mixed-size run must end clean");
            assert_eq!(leak.classes.len(), sizes.len(), "every class audited");
            table.row(&[
                t.to_string(),
                "lfrc".into(),
                fmt_ops(r.ops_per_sec()),
                sum(&r.counters.class_allocs).to_string(),
                sum(&r.counters.class_frees).to_string(),
                r.counters.segments_grown.to_string(),
                fmt_class_curve(&curve),
                curve.iter().map(|c| c.retired).sum::<u64>().to_string(),
                curve.iter().map(|c| c.aborted).sum::<u64>().to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}
