//! E7 — allocation fairness: does every thread make progress under full
//! free-list contention?
//!
//! All threads alloc/free for a fixed window; we report each thread's
//! completed operations and the min/max ratio. The wait-free scheme's
//! round-robin helping (`helpCurrent`) guarantees every thread is
//! eventually served (Lemma 9); the Treiber baseline has no such
//! mechanism, so its ratio degrades under contention (on a multi-core box;
//! a single CPU's scheduler masks some of the effect — the gift counters
//! still show the mechanism working).
//!
//! ```text
//! cargo run --release --bin e7_fairness [-- --threads 2,4,8 --ops 300]
//! ```
//! (`--ops` is the measurement window in milliseconds here)

use std::sync::Arc;

use bench::drivers::run_alloc_fairness;
use bench::Args;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_sim::stats::Table;

fn main() {
    let args = Args::parse(&[2, 4, 8], 300);
    let window_ms = args.ops;
    let mut table = Table::new(
        "E7: per-thread alloc completions in a fixed window (fairness)",
        &["threads", "scheme", "min ops", "max ops", "min/max"],
    );
    for &t in &args.threads {
        for scheme in ["wfrc", "lfrc"] {
            let per_thread = if scheme == "wfrc" {
                run_alloc_fairness(
                    Arc::new(WfrcDomain::<u64>::new(DomainConfig::new(t, t * 2 + 4))),
                    t,
                    window_ms,
                )
            } else {
                let mut d = LfrcDomain::<u64>::new(t, t * 2 + 4);
                d.set_backoff(false);
                run_alloc_fairness(Arc::new(d), t, window_ms)
            };
            let min = *per_thread.iter().min().unwrap();
            let max = *per_thread.iter().max().unwrap();
            table.row(&[
                t.to_string(),
                scheme.to_string(),
                min.to_string(),
                max.to_string(),
                format!("{:.3}", min as f64 / max.max(1) as f64),
            ]);
        }
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}
