//! E5 — wait-freedom of `AllocNode`/`FreeNode` (Lemmas 9–10) vs. the
//! single-head Treiber free-list.
//!
//! All threads alloc/free at full speed on a small pool. Load-bearing
//! columns: **max A3–A18 iterations per alloc** (bounded by helping for
//! WFRC — Lemma 9's claim) and **free push retries** (bounded to the two
//! per-thread stripes for WFRC — Lemma 10), vs. the baseline's unbounded
//! equivalents. Gift statistics show the helping machinery actually firing.
//!
//! ```text
//! cargo run --release --bin e5_alloc_interference [-- --threads 1,2,4,8 --ops 100000 --json]
//! ```

use std::sync::Arc;

use bench::drivers::run_alloc_churn;
use bench::Args;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_sim::stats::{fmt_ops, Table};

fn main() {
    let args = Args::parse(&[1, 2, 4, 8], 100_000);
    let mut table = Table::new(
        "E5: free-list churn (alloc+free per op)",
        &[
            "threads",
            "scheme",
            "ops/s",
            "max alloc iters",
            "alloc CAS fails",
            "max free retries",
            "gifts given",
            "allocs from gift",
        ],
    );
    for &t in &args.threads {
        let cap = t * 4 + 8;
        for scheme in ["wfrc", "lfrc"] {
            let r = if scheme == "wfrc" {
                run_alloc_churn(
                    Arc::new(WfrcDomain::<u64>::new(DomainConfig::new(t, cap))),
                    t,
                    args.ops,
                )
            } else {
                let mut d = LfrcDomain::<u64>::new(t, cap);
                d.set_backoff(false);
                run_alloc_churn(Arc::new(d), t, args.ops)
            };
            table.row(&[
                t.to_string(),
                scheme.to_string(),
                fmt_ops(r.ops_per_sec()),
                r.counters.max_alloc_iters.to_string(),
                r.counters.alloc_cas_failures.to_string(),
                r.counters.max_free_push_retries.to_string(),
                r.counters.alloc_gave_gift.to_string(),
                r.counters.alloc_from_gift.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}
