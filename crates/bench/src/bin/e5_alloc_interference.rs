//! E5 — wait-freedom of `AllocNode`/`FreeNode` (Lemmas 9–10) vs. the
//! single-head Treiber free-list.
//!
//! All threads alloc/free at full speed on a small pool. Load-bearing
//! columns: **max A3–A18 iterations per alloc** (bounded by helping for
//! WFRC — Lemma 9's claim) and **free push retries** (bounded to the two
//! per-thread stripes for WFRC — Lemma 10), vs. the baseline's unbounded
//! equivalents. Gift statistics show the helping machinery actually firing.
//!
//! With `--grow` the pools start **under-provisioned** (initial capacity
//! far below the live-node peak) with doubling growth enabled: the run can
//! only finish by publishing arena segments, and the table reports the
//! growth-path cost — segments grown, nodes seeded, slow-path entries, and
//! the p99/max allocation latency whose tail contains the segment
//! publications.
//!
//! With `--magazine` each scheme runs the same churn twice — per-thread
//! allocation magazines off and on (capacity 64, roomy pool) — and the
//! table reports `magazine_hit_rate` (hits / allocs) next to the shared
//! free-list traffic (slow-path entries, alloc CAS failures, free push
//! retries) that the magazine layer is supposed to absorb.
//!
//! With `--reclaim` each scheme runs an oscillating grow → quiesce →
//! shrink workload over 20 cycles, reclamation off (control) and on: the
//! resident-segment curve must return to the capacity floor after every
//! quiescent phase, and the ops/s pair prices the elasticity machinery.
//!
//! ```text
//! cargo run --release --bin e5_alloc_interference [-- --threads 1,2,4,8 --ops 100000 --json --grow --magazine --reclaim]
//! ```

use std::sync::Arc;

use bench::drivers::{
    fmt_curve, run_alloc_churn, run_alloc_growth, run_reclaim_oscillation,
    run_reclaim_oscillation_lfrc,
};
use bench::Args;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, Growth, WfrcDomain};
use wfrc_sim::stats::{fmt_ns, fmt_ops, Table};

/// Growth mode: each thread holds 32 nodes per burst; pools start at 8
/// nodes total and may double up to far beyond the peak.
fn run_growth_table(args: &Args) {
    const HOLD: usize = 32;
    let mut table = Table::new(
        "E5 (--grow): under-provisioned pools, alloc bursts across segment growth",
        &[
            "threads",
            "scheme",
            "ops/s",
            "segments grown",
            "nodes seeded",
            "slow-path entries",
            "final capacity",
            "p99 alloc",
            "max alloc",
        ],
    );
    for &t in &args.threads {
        let bursts = (args.ops / HOLD as u64).max(1);
        let growth = Growth::doubling_to(1 << 20);
        {
            let d = Arc::new(WfrcDomain::<u64>::new(
                DomainConfig::new(t, 8).with_growth(growth),
            ));
            let (r, hist) = run_alloc_growth(Arc::clone(&d), t, bursts, HOLD);
            table.row(&[
                t.to_string(),
                "wfrc".into(),
                fmt_ops(r.ops_per_sec()),
                r.counters.segments_grown.to_string(),
                r.counters.nodes_seeded.to_string(),
                r.counters.alloc_slow_path.to_string(),
                d.capacity().to_string(),
                fmt_ns(hist.quantile(0.99)),
                fmt_ns(hist.max()),
            ]);
            assert!(d.leak_check().is_clean(), "wfrc growth run must end clean");
        }
        {
            let mut d = LfrcDomain::<u64>::with_growth(t, 8, growth);
            d.set_backoff(false);
            let d = Arc::new(d);
            let (r, hist) = run_alloc_growth(Arc::clone(&d), t, bursts, HOLD);
            table.row(&[
                t.to_string(),
                "lfrc".into(),
                fmt_ops(r.ops_per_sec()),
                r.counters.segments_grown.to_string(),
                r.counters.nodes_seeded.to_string(),
                r.counters.alloc_slow_path.to_string(),
                d.capacity().to_string(),
                fmt_ns(hist.quantile(0.99)),
                fmt_ns(hist.max()),
            ]);
            assert!(d.leak_check().is_clean(), "lfrc growth run must end clean");
        }
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}

/// Reclaim mode: oscillating load across ≥20 grow → quiesce → shrink
/// cycles. Each scheme runs the identical workload twice — reclamation off
/// (control) and on — so the ops/s delta is the price of elasticity, and
/// the resident-segment curve shows capacity actually returning to the
/// floor after every quiescent phase. WFRC shrinks concurrently (epoch
/// grace + occupancy sweep); LFRC can only shrink stop-the-world between
/// cycles (`reclaim_quiescent`), which is the asymmetry under test.
fn run_reclaim_table(args: &Args) {
    const HOLD: usize = 32;
    const CYCLES: usize = 20;
    const INITIAL: usize = 16;
    let mut table = Table::new(
        "E5 (--reclaim): elastic capacity over grow/quiesce cycles",
        &[
            "threads",
            "scheme",
            "reclaim",
            "ops/s",
            "resident curve",
            "segments retired",
            "segments revived",
            "reclaim aborts",
            "final capacity",
        ],
    );
    for &t in &args.threads {
        // Same per-thread op budget as the growth table, split across the
        // cycles so the whole sweep stays comparable to `--grow`.
        let bursts = (args.ops / (HOLD as u64 * CYCLES as u64)).max(1);
        let growth = Growth::doubling_to(1 << 20);
        for reclaim in [false, true] {
            let d = Arc::new(WfrcDomain::<u64>::new(
                DomainConfig::new(t + 1, INITIAL).with_growth(growth),
            ));
            let initial_segments = d.segment_count();
            let (r, curve) =
                run_reclaim_oscillation(Arc::clone(&d), t, CYCLES, bursts, HOLD, reclaim);
            if reclaim {
                // The ISSUE acceptance bar: every quiescent phase returns
                // the footprint to (at most one segment above) the floor.
                for (i, c) in curve.iter().enumerate() {
                    assert!(
                        c.resident_after <= initial_segments + 1,
                        "cycle {i}: resident {} > floor {initial_segments}+1",
                        c.resident_after
                    );
                }
            }
            assert!(d.leak_check().is_clean(), "wfrc reclaim run must end clean");
            table.row(&[
                t.to_string(),
                "wfrc".into(),
                if reclaim { "on" } else { "off" }.into(),
                fmt_ops(r.ops_per_sec()),
                fmt_curve(&curve),
                d.segments_retired().to_string(),
                d.segments_revived().to_string(),
                r.counters.reclaim_aborts.to_string(),
                d.capacity().to_string(),
            ]);
        }
        for reclaim in [false, true] {
            let mut d = LfrcDomain::<u64>::with_growth(t, INITIAL, growth);
            d.set_backoff(false);
            let (r, curve) = run_reclaim_oscillation_lfrc(&mut d, t, CYCLES, bursts, HOLD, reclaim);
            assert!(d.leak_check().is_clean(), "lfrc reclaim run must end clean");
            table.row(&[
                t.to_string(),
                "lfrc".into(),
                if reclaim { "on" } else { "off" }.into(),
                fmt_ops(r.ops_per_sec()),
                fmt_curve(&curve),
                d.segments_retired().to_string(),
                d.segments_revived().to_string(),
                "0".into(),
                d.capacity().to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}

/// Magazine mode: same churn, magazines off vs. on, roomy pool (the
/// contrast under test is fast-path coverage, not pool pressure).
fn run_magazine_table(args: &Args) {
    const MAG_CAP: usize = 64;
    let mut table = Table::new(
        "E5 (--magazine): per-thread magazines over the shared free-lists",
        &[
            "threads",
            "scheme",
            "magazine",
            "ops/s",
            "magazine_hit_rate",
            "shared allocs",
            "refills",
            "drains",
            "slow-path entries",
            "alloc CAS fails",
            "free push retries",
        ],
    );
    for &t in &args.threads {
        // Roomy: the clamp leaves the full 64-node magazines in place.
        let cap = t * 256;
        for scheme in ["wfrc", "lfrc"] {
            for mag in [0usize, MAG_CAP] {
                let (r, leak) = if scheme == "wfrc" {
                    let d = Arc::new(WfrcDomain::<u64>::new(
                        DomainConfig::new(t, cap).with_magazine(mag),
                    ));
                    let r = run_alloc_churn(Arc::clone(&d), t, args.ops);
                    (r, d.leak_check())
                } else {
                    let mut d = LfrcDomain::<u64>::new(t, cap);
                    d.set_backoff(false);
                    d.set_magazine(mag);
                    let d = Arc::new(d);
                    let r = run_alloc_churn(Arc::clone(&d), t, args.ops);
                    (r, d.leak_check())
                };
                assert!(leak.is_clean(), "{scheme} magazine run must end clean");
                let hit_rate = if r.counters.alloc_calls > 0 {
                    r.counters.magazine_hits as f64 / r.counters.alloc_calls as f64
                } else {
                    0.0
                };
                table.row(&[
                    t.to_string(),
                    scheme.to_string(),
                    if mag == 0 {
                        "off".into()
                    } else {
                        format!("{mag}")
                    },
                    fmt_ops(r.ops_per_sec()),
                    format!("{hit_rate:.3}"),
                    (r.counters.alloc_calls - r.counters.magazine_hits).to_string(),
                    r.counters.magazine_refills.to_string(),
                    r.counters.magazine_drains.to_string(),
                    r.counters.alloc_slow_path.to_string(),
                    r.counters.alloc_cas_failures.to_string(),
                    r.counters.free_push_retries.to_string(),
                ]);
            }
        }
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}

fn main() {
    let args = Args::parse(&[1, 2, 4, 8], 100_000);
    if args.grow {
        run_growth_table(&args);
        return;
    }
    if args.magazine {
        run_magazine_table(&args);
        return;
    }
    if args.reclaim {
        run_reclaim_table(&args);
        return;
    }
    let mut table = Table::new(
        "E5: free-list churn (alloc+free per op)",
        &[
            "threads",
            "scheme",
            "ops/s",
            "max alloc iters",
            "alloc CAS fails",
            "max free retries",
            "gifts given",
            "allocs from gift",
        ],
    );
    for &t in &args.threads {
        let cap = t * 4 + 8;
        for scheme in ["wfrc", "lfrc"] {
            let r = if scheme == "wfrc" {
                run_alloc_churn(
                    Arc::new(WfrcDomain::<u64>::new(DomainConfig::new(t, cap))),
                    t,
                    args.ops,
                )
            } else {
                let mut d = LfrcDomain::<u64>::new(t, cap);
                d.set_backoff(false);
                run_alloc_churn(Arc::new(d), t, args.ops)
            };
            table.row(&[
                t.to_string(),
                scheme.to_string(),
                fmt_ops(r.ops_per_sec()),
                r.counters.max_alloc_iters.to_string(),
                r.counters.alloc_cas_failures.to_string(),
                r.counters.max_free_push_retries.to_string(),
                r.counters.alloc_gave_gift.to_string(),
                r.counters.alloc_from_gift.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}
