//! E12 — server workload: M tasks multiplexed over N leased slots.
//!
//! The paper fixes `NR_THREADS` at domain creation; a server admitting
//! tens of thousands of short-lived sessions cannot dedicate a
//! registration slot to each. E12 drives that shape: `--tasks` async
//! tasks (default 10 000) on a minimal poll-loop executor check a handle
//! out of a [`wfrc_core::lease::LeasePool`] of `--slots` leases (default
//! sweep 16,64), perform `--ops` mixed put/get/remove operations against
//! one shared [`wfrc_structures::SessionCache`] with values drawn from
//! the byte-class ladder, and check back in. Reported per cell: cache
//! throughput, lease-checkout latency (p50/p99/p999 — the queue wait
//! under slot contention), per-op latency (p50/p99/p999), and the pool's
//! handoff/enroll counters. Both schemes run the identical task set.
//!
//! With `--grow` the byte classes start under-provisioned (8 blocks,
//! doubling growth) so the run must grow arenas mid-churn; with
//! `--reclaim` the wfrc cell additionally runs a **concurrent** segment
//! reclaimer for the whole measured section (the LFRC baseline can only
//! reclaim stop-the-world after its workers exit — the asymmetry is part
//! of the result).
//!
//! With `--kill N`, N tasks "crash" holding their lease (the guard is
//! leaked); a sentinel supervisor thread — the run's only recovery agent —
//! must expire and recover every dead slot, and the table reports the
//! kill→recovery MTTR (p50/p99). With `--admission-ms D`, tasks acquire
//! through an [`wfrc_core::AdmissionPolicy`] and shed load
//! (`Overloaded`/`Backpressure`, both counted) instead of queueing past D
//! milliseconds — so a killed holder costs bounded latency, never a hang.
//! `--sentinel` runs the supervisor even without kills.
//!
//! Every cell ends with a [`wfrc_core::domain::LeakReport`] audit and a
//! lease audit (`issued == released + killed`, every task either sampled
//! a checkout or shed): the run fails unless both schemes finish
//! leak-free.
//!
//! ```text
//! cargo run --release --bin e12_server [-- --tasks 10000 --slots 16,64 \
//!     --ops 200 --workers 8 --classes 64,256,1024 --grow --reclaim \
//!     --kill 32 --admission-ms 100 --sentinel --json]
//! ```

use bench::drivers::{run_server, run_server_lfrc, ServerCfg};
use bench::Args;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{ClassConfig, DomainConfig, Growth, RawBytes, WfrcDomain};
use wfrc_sim::stats::{fmt_ns, fmt_ops, Summary, Table};
use wfrc_structures::ListCell;

/// Key range shared by all tasks (small enough for real contention).
const KEYSPACE: u64 = 4096;
/// Under-provisioned per-class start (`--grow`).
const GROW_INITIAL: usize = 8;
/// Roomy per-class start (default): growth still enabled, rarely needed.
const ROOMY_INITIAL: usize = 1024;

/// Byte-class ladder for one cell. Magazines are always on here — the
/// pool's flush-on-release/hot-handoff path is part of what E12 measures.
fn class_configs(sizes: &[usize], grow: bool) -> Vec<ClassConfig> {
    let initial = if grow { GROW_INITIAL } else { ROOMY_INITIAL };
    sizes
        .iter()
        .map(|&s| {
            ClassConfig::new(s, initial)
                .with_growth(Growth::doubling_to(1 << 20))
                .with_magazine(16)
        })
        .collect()
}

/// Node-pool capacity: live list cells are bounded by the keyspace plus
/// per-slot in-flight nodes; double it and pad.
fn node_capacity(slots: usize) -> usize {
    KEYSPACE as usize * 2 + slots * 16 + 1024
}

fn audit(scheme: &str, r: &bench::drivers::ServerResult, tasks: usize) {
    assert_eq!(
        r.lease.issued,
        r.lease.released + r.killed,
        "{scheme}: every lease checked out must be checked back in or killed"
    );
    assert_eq!(
        r.checkout.len() + r.shed,
        tasks as u64,
        "{scheme}: every task either sampled a checkout or shed its load"
    );
    assert_eq!(
        r.shed,
        r.lease.overloaded + r.lease.backpressure,
        "{scheme}: shed tasks are exactly the admission refusals"
    );
    if r.killed > 0 {
        assert!(
            r.lease.expired >= r.killed && r.lease.recovered >= r.killed,
            "{scheme}: the sentinel must expire and recover every killed lease \
             (killed {}, expired {}, recovered {})",
            r.killed,
            r.lease.expired,
            r.lease.recovered
        );
    }
}

fn row(table: &mut Table, slots: usize, scheme: &str, r: &bench::drivers::ServerResult) {
    let co = Summary::of(&r.checkout);
    let op = Summary::of(&r.op);
    table.row(&[
        slots.to_string(),
        scheme.into(),
        r.tasks.to_string(),
        fmt_ops(r.ops_per_sec()),
        fmt_ns(co.p50),
        fmt_ns(co.p99),
        fmt_ns(co.p999),
        fmt_ns(op.p50),
        fmt_ns(op.p99),
        fmt_ns(op.p999),
        r.lease.handoffs.to_string(),
        r.lease.enrolled.to_string(),
        r.retired.to_string(),
        r.killed.to_string(),
        r.lease.overloaded.to_string(),
        r.lease.backpressure.to_string(),
        r.lease.expired.to_string(),
        r.lease.recovered.to_string(),
        if r.mttr.is_empty() {
            "-".into()
        } else {
            fmt_ns(r.mttr.quantile(0.50))
        },
        if r.mttr.is_empty() {
            "-".into()
        } else {
            fmt_ns(r.mttr.quantile(0.99))
        },
    ]);
}

fn main() {
    let args = Args::parse(&[], 200);
    let workers = if args.workers == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        args.workers
    };
    let sizes: Vec<usize> = if args.classes.is_empty() {
        vec![64, 256, 1024]
    } else {
        args.classes.clone()
    };
    let mut table = Table::new(
        "E12: server workload — tasks over leased registration slots",
        &[
            "slots", "scheme", "tasks", "ops/s", "co p50", "co p99", "co p999", "op p50", "op p99",
            "op p999", "handoffs", "enrolled", "retired", "killed", "overload", "backpr",
            "expired", "recov", "mttr p50", "mttr p99",
        ],
    );
    for &slots in &args.slots {
        assert!(slots >= 1, "E12 needs at least one lease slot");
        // Chaos mode (`--kill`) needs a TTL for the sentinel to expire the
        // dead holders against; keep it far above an honest session's
        // residence time so only kills ever expire.
        let ttl = (args.kill > 0).then(|| std::time::Duration::from_millis(250));
        let cfg = ServerCfg {
            tasks: args.tasks,
            slots,
            workers,
            ops_per_task: args.ops,
            keyspace: KEYSPACE,
            ttl,
            reclaim: args.reclaim,
            kill: args.kill,
            admission: (args.admission_ms > 0)
                .then(|| std::time::Duration::from_millis(args.admission_ms)),
            sentinel: args.sentinel || args.kill > 0,
        };
        {
            // +1 registration slot for the concurrent reclaimer.
            let d = WfrcDomain::<ListCell<RawBytes>>::new(
                DomainConfig::new(slots + 1, node_capacity(slots))
                    .with_classes(class_configs(&sizes, args.grow)),
            );
            let r = run_server(&d, &cfg);
            let leak = d.leak_check();
            assert!(leak.is_clean(), "wfrc server run must end clean: {leak}");
            audit("wfrc", &r, cfg.tasks);
            row(&mut table, slots, "wfrc", &r);
        }
        {
            let mut d = LfrcDomain::<ListCell<RawBytes>>::new(slots + 1, node_capacity(slots));
            d.set_backoff(false);
            d.set_classes(class_configs(&sizes, args.grow));
            let mut r = run_server_lfrc(&d, &cfg);
            if args.reclaim {
                // Stop-the-world: only possible after the tasks drained.
                for ci in 0..d.class_count() {
                    while d.reclaim_class_quiescent(ci) {
                        r.retired += 1;
                    }
                }
            }
            let leak = d.leak_check();
            assert!(leak.is_clean(), "lfrc server run must end clean");
            audit("lfrc", &r, cfg.tasks);
            row(&mut table, slots, "lfrc", &r);
        }
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}
