//! E2 — Treiber stack push/pop pairs across all four reclamation schemes
//! (the §3.2 compatibility claim, measured).
//!
//! Expected shape: EBR fastest (cheapest reads), HP next, the two
//! reference-counting schemes behind (every link touch is an RMW), with
//! WFRC ≈ LFRC on average — the paper's central parity claim.
//!
//! ```text
//! cargo run --release --bin e2_stack [-- --threads 1,2,4,8 --ops 20000 --json]
//! ```

use std::sync::Arc;

use bench::drivers::{run_stack_ebr, run_stack_hp, run_stack_rc};
use bench::Args;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_sim::stats::{fmt_ops, Table};
use wfrc_structures::stack::StackCell;

fn main() {
    let args = Args::parse(&[1, 2, 4, 8], 20_000);
    const PREFILL: usize = 64;
    let mut table = Table::new(
        "E2: Treiber stack push/pop pairs (ops/s)",
        &["threads", "wfrc", "lfrc", "hazard", "epoch"],
    );
    for &t in &args.threads {
        let cap = PREFILL + t * 16 + 64;
        let wf = run_stack_rc(
            Arc::new(WfrcDomain::<StackCell<u64>>::new(DomainConfig::new(
                t + 1,
                cap,
            ))),
            t,
            args.ops,
            PREFILL,
        );
        let lf = run_stack_rc(
            Arc::new(LfrcDomain::<StackCell<u64>>::new(t + 1, cap)),
            t,
            args.ops,
            PREFILL,
        );
        let hp = run_stack_hp(t, args.ops, PREFILL);
        let ebr = run_stack_ebr(t, args.ops, PREFILL);
        table.row(&[
            t.to_string(),
            fmt_ops(wf.ops_per_sec()),
            fmt_ops(lf.ops_per_sec()),
            fmt_ops(hp.ops_per_sec()),
            fmt_ops(ebr.ops_per_sec()),
        ]);
    }
    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}
