//! E9 — reclamation under a stalled thread: the paper's real-time
//! argument, measured.
//!
//! One thread acquires a reference/pin/hazard and then stalls forever.
//! The other threads churn through nodes. How much memory can pile up?
//!
//! * **WFRC / LFRC (reference counting)**: a stalled thread pins exactly
//!   the nodes it holds counts on — here, one. Everything else recycles.
//! * **Hazard pointers**: a stalled thread pins at most `K` nodes (its
//!   hazard slots); retired lists stay below the scan threshold.
//! * **Epochs**: a stalled *pinned* thread freezes the global epoch —
//!   garbage grows **without bound** (proportional to the churn), which is
//!   why EBR was never a candidate for the paper's real-time setting.
//!
//! ```text
//! cargo run --release --bin e9_stall [-- --ops 50000]
//! ```

use std::sync::atomic::AtomicPtr;

use bench::Args;
use wfrc_baselines::epoch::EbrDomain;
use wfrc_baselines::hazard::HpDomain;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_sim::stats::Table;

fn main() {
    let args = Args::parse(&[1], 50_000);
    let churn = args.ops;
    let mut table = Table::new(
        "E9: unreclaimed nodes after churn with one stalled thread",
        &["scheme", "stalled holds", "churned", "unreclaimed", "bounded?"],
    );

    // WFRC: stalled thread holds one NodeRef.
    {
        let d = WfrcDomain::<u64>::new(DomainConfig::new(2, 64));
        let h_stall = d.register().unwrap();
        let held = h_stall.alloc_with(|v| *v = 1).unwrap(); // stalled forever
        let h = d.register().unwrap();
        for _ in 0..churn {
            let n = h.alloc_with(|v| *v = 2).expect("pool never exhausts");
            drop(n);
        }
        drop(h);
        let live = d.leak_check().live_nodes;
        table.row(&[
            "wfrc".into(),
            "1 ref".into(),
            churn.to_string(),
            (live - 1).to_string(), // minus the deliberately held node
            "yes (exact)".into(),
        ]);
        drop(held);
        drop(h_stall);
    }

    // LFRC: identical bound (refcounting property, not wait-freedom).
    {
        let d = LfrcDomain::<u64>::new(2, 64);
        let h_stall = d.register().unwrap();
        let held = h_stall.alloc_raw().unwrap(); // stalled forever
        let h = d.register().unwrap();
        for _ in 0..churn {
            let n = h.alloc_raw().expect("pool never exhausts");
            // SAFETY: we own the alloc reference.
            unsafe { h.release_raw(n) };
        }
        drop(h);
        let live = d.leak_check().live_nodes;
        table.row(&[
            "lfrc".into(),
            "1 ref".into(),
            churn.to_string(),
            (live - 1).to_string(),
            "yes (exact)".into(),
        ]);
        // SAFETY: teardown.
        unsafe { h_stall.release_raw(held) };
    }

    // Hazard pointers: stalled thread protects one node.
    {
        let d = HpDomain::<u64>::new(2);
        let mut h_stall = d.register().unwrap();
        let node = h_stall.alloc(7);
        let src = AtomicPtr::new(node);
        let p = h_stall.protect(0, &src);
        assert_eq!(p, node); // protected forever
        let mut h = d.register().unwrap();
        for i in 0..churn {
            let n = h.alloc(i);
            // SAFETY: never published; retired exactly once.
            unsafe { h.retire(n) };
        }
        h.scan();
        let pending = h.pending();
        table.row(&[
            "hazard".into(),
            "1 hazard".into(),
            churn.to_string(),
            pending.to_string(),
            "yes (≤ scan threshold)".into(),
        ]);
        h_stall.clear(0);
        // SAFETY: sole owner now.
        unsafe { h_stall.retire(node) };
    }

    // Epochs: stalled thread pins.
    {
        let d = EbrDomain::<u64>::new(2);
        let h_stall = d.register().unwrap();
        let _pin = h_stall.pin(); // stalled while pinned: reclamation freezes
        let h = d.register().unwrap();
        h.try_advance(); // one advance may still slip through
        for i in 0..churn {
            let n = h.alloc(i);
            // SAFETY: never published; retired exactly once.
            unsafe { h.retire(n) };
        }
        let pending = h.pending();
        table.row(&[
            "epoch".into(),
            "1 pin".into(),
            churn.to_string(),
            pending.to_string(),
            "NO (grows with churn)".into(),
        ]);
        drop(_pin);
    }

    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}
