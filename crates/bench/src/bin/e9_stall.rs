//! E9 — reclamation under a stalled thread: the paper's real-time
//! argument, measured.
//!
//! One thread acquires a reference/pin/hazard and then stalls forever.
//! The other threads churn through nodes. How much memory can pile up?
//!
//! * **WFRC / LFRC (reference counting)**: a stalled thread pins exactly
//!   the nodes it holds counts on — here, one. Everything else recycles.
//! * **Hazard pointers**: a stalled thread pins at most `K` nodes (its
//!   hazard slots); retired lists stay below the scan threshold.
//! * **Epochs**: a stalled *pinned* thread freezes the global epoch —
//!   garbage grows **without bound** (proportional to the churn), which is
//!   why EBR was never a candidate for the paper's real-time setting.
//!
//! Each row also reports the stalled victim's **footprint** (every node it
//! pins: held refs plus parked magazine nodes for the refcounting schemes,
//! hazard slots for HP, the frozen garbage pile for EBR) and the measured
//! **recovery latency**: the time from declaring the victim dead to all of
//! its pinned resources being recovered. For WFRC/LFRC that is the crash
//! path this repo's robustness layer exists for — `abandon()` the handle
//! and `adopt_orphans()` the slot; for HP/EBR it is the scheme's own
//! teardown (clear + scan, unpin + advance).
//!
//! With `--grow` two extra rows run each refcounting scheme on an
//! **under-provisioned growable pool** (initial capacity 8, doubling):
//! the stalled holder must not force unbounded growth — the pool grows to
//! cover the churn's working set and then stops, and nothing leaks.
//!
//! With `--magazine` two extra rows run each refcounting scheme with
//! per-thread allocation magazines enabled: a stalled thread additionally
//! parks its magazine's nodes (bounded by the magazine capacity — reported
//! in the "stalled holds" cell together with the churn thread's fast-path
//! hit rate), and everything else still recycles.
//!
//! With `--reclaim` two extra rows sharpen the stall bound from *nodes* to
//! *address space*: after the churn grows the pool, WFRC shrinks back to
//! its capacity floor **while the victim is still stalled** (the stall
//! pins one node in the immortal first segment, nothing else), whereas
//! LFRC's stop-the-world `reclaim_quiescent` needs exclusive access and
//! can only shrink after the victim's slot has been recovered.
//!
//! ```text
//! cargo run --release --bin e9_stall [-- --ops 50000 --grow --magazine --reclaim]
//! ```

use std::sync::atomic::AtomicPtr;
use std::time::Instant;

use bench::Args;
use wfrc_baselines::epoch::EbrDomain;
use wfrc_baselines::hazard::HpDomain;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, Growth, ReclaimOutcome, WfrcDomain};
use wfrc_sim::stats::Table;

const COLUMNS: [&str; 7] = [
    "scheme",
    "stalled holds",
    "churned",
    "unreclaimed",
    "stall footprint",
    "recovery µs",
    "bounded?",
];

fn main() {
    let args = Args::parse(&[1], 50_000);
    let churn = args.ops;
    let mut table = Table::new(
        "E9: unreclaimed nodes after churn with one stalled thread",
        &COLUMNS,
    );

    // WFRC: stalled thread holds one NodeRef.
    {
        let d = WfrcDomain::<u64>::new(DomainConfig::new(2, 64));
        let h_stall = d.register().unwrap();
        let held = h_stall.alloc_with(|v| *v = 1).unwrap(); // stalled forever
        let h = d.register().unwrap();
        for _ in 0..churn {
            let n = h.alloc_with(|v| *v = 2).expect("pool never exhausts");
            drop(n);
        }
        drop(h);
        let live = d.leak_check().live_nodes;
        let footprint = 1 + h_stall.magazine_len();
        let t0 = Instant::now();
        drop(held);
        h_stall.abandon();
        let _ = d.adopt_orphans();
        let recovery_us = t0.elapsed().as_micros();
        table.row(&[
            "wfrc".into(),
            "1 ref".into(),
            churn.to_string(),
            (live - 1).to_string(), // minus the deliberately held node
            footprint.to_string(),
            recovery_us.to_string(),
            "yes (exact)".into(),
        ]);
        assert!(d.leak_check().is_clean(), "wfrc stall must end clean");
    }

    // LFRC: identical bound (refcounting property, not wait-freedom).
    {
        let d = LfrcDomain::<u64>::new(2, 64);
        let h_stall = d.register().unwrap();
        let held = h_stall.alloc_raw().unwrap(); // stalled forever
        let h = d.register().unwrap();
        for _ in 0..churn {
            let n = h.alloc_raw().expect("pool never exhausts");
            // SAFETY: we own the alloc reference.
            unsafe { h.release_raw(n) };
        }
        drop(h);
        let live = d.leak_check().live_nodes;
        let footprint = 1 + h_stall.magazine_len();
        let t0 = Instant::now();
        // SAFETY: teardown of the deliberately held reference.
        unsafe { h_stall.release_raw(held) };
        h_stall.abandon();
        let _ = d.adopt_orphans();
        let recovery_us = t0.elapsed().as_micros();
        table.row(&[
            "lfrc".into(),
            "1 ref".into(),
            churn.to_string(),
            (live - 1).to_string(),
            footprint.to_string(),
            recovery_us.to_string(),
            "yes (exact)".into(),
        ]);
        assert!(d.leak_check().is_clean(), "lfrc stall must end clean");
    }

    // Hazard pointers: stalled thread protects one node.
    {
        let d = HpDomain::<u64>::new(2);
        let mut h_stall = d.register().unwrap();
        let node = h_stall.alloc(7);
        let src = AtomicPtr::new(node);
        let p = h_stall.protect(0, &src);
        assert_eq!(p, node); // protected forever
        let mut h = d.register().unwrap();
        for i in 0..churn {
            let n = h.alloc(i);
            // SAFETY: never published; retired exactly once.
            unsafe { h.retire(n) };
        }
        h.scan();
        let pending = h.pending();
        let t0 = Instant::now();
        h_stall.clear(0);
        // SAFETY: sole owner now.
        unsafe { h_stall.retire(node) };
        h_stall.scan();
        let recovery_us = t0.elapsed().as_micros();
        table.row(&[
            "hazard".into(),
            "1 hazard".into(),
            churn.to_string(),
            pending.to_string(),
            "1".into(),
            recovery_us.to_string(),
            "yes (≤ scan threshold)".into(),
        ]);
    }

    // Epochs: stalled thread pins.
    {
        let d = EbrDomain::<u64>::new(2);
        let h_stall = d.register().unwrap();
        let _pin = h_stall.pin(); // stalled while pinned: reclamation freezes
        let h = d.register().unwrap();
        h.try_advance(); // one advance may still slip through
        for i in 0..churn {
            let n = h.alloc(i);
            // SAFETY: never published; retired exactly once.
            unsafe { h.retire(n) };
        }
        let pending = h.pending();
        // EBR's "footprint" is the whole frozen pile: every retired node
        // since the stall is pinned by the stuck epoch.
        let t0 = Instant::now();
        drop(_pin);
        // Three advances cycle all three bags once the pin is gone.
        for _ in 0..3 {
            h.try_advance();
        }
        let recovery_us = t0.elapsed().as_micros();
        table.row(&[
            "epoch".into(),
            "1 pin".into(),
            churn.to_string(),
            pending.to_string(),
            pending.to_string(),
            recovery_us.to_string(),
            "NO (grows with churn)".into(),
        ]);
    }

    // Growth mode: the same stall scenario on under-provisioned pools.
    // Each churn iteration holds a 16-node burst, so the pool must grow
    // past its 8-node start — but only up to the working set, stall or not.
    if args.grow {
        let growth = Growth::doubling_to(1 << 16);
        {
            let d = WfrcDomain::<u64>::new(DomainConfig::new(2, 8).with_growth(growth));
            let h_stall = d.register().unwrap();
            let held = h_stall.alloc_with(|v| *v = 1).unwrap(); // stalled forever
            let h = d.register().unwrap();
            for _ in 0..churn / 16 {
                let burst: Vec<_> = (0..16)
                    .map(|_| h.alloc_with(|v| *v = 2).expect("growth covers the peak"))
                    .collect();
                drop(burst);
            }
            let grown = h.counters().snapshot().segments_grown;
            drop(h);
            let live = d.leak_check().live_nodes;
            let footprint = 1 + h_stall.magazine_len();
            let t0 = Instant::now();
            drop(held);
            h_stall.abandon();
            let _ = d.adopt_orphans();
            let recovery_us = t0.elapsed().as_micros();
            table_growth_row(
                &mut table,
                "wfrc+grow",
                churn,
                live - 1,
                d.capacity(),
                d.segment_count(),
                grown,
                footprint,
                recovery_us,
            );
            assert!(
                d.leak_check().is_clean(),
                "wfrc growth stall must end clean"
            );
        }
        {
            let d = LfrcDomain::<u64>::with_growth(2, 8, growth);
            let h_stall = d.register().unwrap();
            let held = h_stall.alloc_raw().unwrap(); // stalled forever
            let h = d.register().unwrap();
            for _ in 0..churn / 16 {
                let burst: Vec<_> = (0..16)
                    .map(|_| h.alloc_raw().expect("growth covers the peak"))
                    .collect();
                // SAFETY: we own one reference per node.
                unsafe {
                    for n in burst {
                        h.release_raw(n);
                    }
                }
            }
            let grown = h.counters().snapshot().segments_grown;
            drop(h);
            let live = d.leak_check().live_nodes;
            let footprint = 1 + h_stall.magazine_len();
            let t0 = Instant::now();
            // SAFETY: teardown of the deliberately held reference.
            unsafe { h_stall.release_raw(held) };
            h_stall.abandon();
            let _ = d.adopt_orphans();
            let recovery_us = t0.elapsed().as_micros();
            table_growth_row(
                &mut table,
                "lfrc+grow",
                churn,
                live - 1,
                d.capacity(),
                d.segment_count(),
                grown,
                footprint,
                recovery_us,
            );
            assert!(
                d.leak_check().is_clean(),
                "lfrc growth stall must end clean"
            );
        }
    }

    // Magazine mode: the same stall scenario with per-thread magazines.
    // The stalled thread's pinned footprint grows by at most its magazine
    // capacity (nodes parked there stay parked until it drains), which is
    // a constant — the refcounting bound stays exact, just offset. The
    // recovery column times `abandon` + `adopt_orphans` actually draining
    // that parked pile back into circulation.
    if args.magazine {
        const MAG: usize = 16;
        {
            let d = WfrcDomain::<u64>::new(DomainConfig::new(2, 256).with_magazine(MAG));
            let h_stall = d.register().unwrap();
            let held = h_stall.alloc_with(|v| *v = 1).unwrap(); // stalled forever
            let h = d.register().unwrap();
            for _ in 0..churn {
                let n = h.alloc_with(|v| *v = 2).expect("pool never exhausts");
                drop(n);
            }
            let s = h.counters().snapshot();
            let stall_parked = h_stall.magazine_len();
            drop(h);
            let report = d.leak_check();
            let t0 = Instant::now();
            drop(held);
            h_stall.abandon();
            let adopted = d.adopt_orphans();
            let recovery_us = t0.elapsed().as_micros();
            table_magazine_row(
                &mut table,
                "wfrc+mag",
                churn,
                report.live_nodes - 1,
                d.magazine_cap(),
                stall_parked,
                s.magazine_hits as f64 / s.alloc_calls.max(1) as f64,
                1 + stall_parked,
                recovery_us,
            );
            assert!(
                adopted.magazine_nodes_recovered >= stall_parked,
                "adoption must recover the parked magazine"
            );
            assert!(
                d.leak_check().is_clean(),
                "wfrc magazine stall must end clean"
            );
        }
        {
            let mut d = LfrcDomain::<u64>::new(2, 256);
            d.set_magazine(MAG);
            let h_stall = d.register().unwrap();
            let held = h_stall.alloc_raw().unwrap(); // stalled forever
            let h = d.register().unwrap();
            for _ in 0..churn {
                let n = h.alloc_raw().expect("pool never exhausts");
                // SAFETY: we own the alloc reference.
                unsafe { h.release_raw(n) };
            }
            let s = h.counters().snapshot();
            let stall_parked = h_stall.magazine_len();
            drop(h);
            let report = d.leak_check();
            let t0 = Instant::now();
            // SAFETY: teardown of the deliberately held reference.
            unsafe { h_stall.release_raw(held) };
            h_stall.abandon();
            let adopted = d.adopt_orphans();
            let recovery_us = t0.elapsed().as_micros();
            table_magazine_row(
                &mut table,
                "lfrc+mag",
                churn,
                report.live_nodes - 1,
                d.magazine_cap(),
                stall_parked,
                s.magazine_hits as f64 / s.alloc_calls.max(1) as f64,
                1 + stall_parked,
                recovery_us,
            );
            assert!(
                adopted.magazine_nodes_recovered >= stall_parked,
                "adoption must recover the parked magazine"
            );
            assert!(
                d.leak_check().is_clean(),
                "lfrc magazine stall must end clean"
            );
        }
    }

    // Reclaim mode: the stall bound extended from nodes to address space.
    // The victim stalls holding one node from the immortal first segment;
    // the churn forces the pool to grow far past it. A refcounting stall
    // pins exactly what it holds — so WFRC's concurrent reclaimer can
    // retire every grown segment back to the floor *around* the stalled
    // thread. LFRC's shrink is stop-the-world (`&mut self`), so its grown
    // footprint is stuck at the peak until the victim's slot is recovered.
    if args.reclaim {
        let growth = Growth::doubling_to(1 << 16);
        {
            let d = WfrcDomain::<u64>::new(DomainConfig::new(3, 8).with_growth(growth));
            let h_stall = d.register().unwrap();
            let held = h_stall.alloc_with(|v| *v = 1).unwrap(); // stalled forever
            let h = d.register().unwrap();
            for _ in 0..churn / 16 {
                let burst: Vec<_> = (0..16)
                    .map(|_| h.alloc_with(|v| *v = 2).expect("growth covers the peak"))
                    .collect();
                drop(burst);
            }
            let peak = d.resident_segments();
            drop(h);
            // Shrink while the victim is still stalled.
            let reclaimer = d.register().unwrap();
            let (mut aborted, mut stalls) = (0u64, 0u64);
            loop {
                match reclaimer.reclaim() {
                    ReclaimOutcome::Retired { .. } => stalls = 0,
                    ReclaimOutcome::NoCandidate => break,
                    _ => {
                        aborted += 1;
                        stalls += 1;
                        assert!(stalls < 1_000, "reclaim stuck despite quiescence");
                        std::thread::yield_now();
                    }
                }
            }
            let resident = d.resident_segments();
            assert_eq!(resident, 1, "a stalled holder must not pin grown segments");
            let retired = d.segments_retired();
            let live = d.leak_check().live_nodes;
            drop(reclaimer);
            let t0 = Instant::now();
            drop(held);
            h_stall.abandon();
            let _ = d.adopt_orphans();
            let recovery_us = t0.elapsed().as_micros();
            table.row(&[
                "wfrc+reclaim".into(),
                format!("1 ref; {peak}→{resident} segs while stalled ({retired} retired, {aborted} aborts)"),
                churn.to_string(),
                (live - 1).to_string(),
                "1 node (0 segments)".into(),
                recovery_us.to_string(),
                "yes (pins nodes, not address space)".into(),
            ]);
            assert!(
                d.leak_check().is_clean(),
                "wfrc reclaim stall must end clean"
            );
        }
        {
            let mut d = LfrcDomain::<u64>::with_growth(2, 8, growth);
            let h_stall = d.register().unwrap();
            let held = h_stall.alloc_raw().unwrap(); // stalled forever
            let h = d.register().unwrap();
            for _ in 0..churn / 16 {
                let burst: Vec<_> = (0..16)
                    .map(|_| h.alloc_raw().expect("growth covers the peak"))
                    .collect();
                // SAFETY: we own one reference per node.
                unsafe {
                    for n in burst {
                        h.release_raw(n);
                    }
                }
            }
            let peak = d.segment_count();
            drop(h);
            let live = d.leak_check().live_nodes;
            // No shrink is possible here: `reclaim_quiescent` takes
            // `&mut self`, and the stalled handle still borrows the
            // domain. Recovery must come first.
            let t0 = Instant::now();
            // SAFETY: teardown of the deliberately held reference.
            unsafe { h_stall.release_raw(held) };
            h_stall.abandon();
            let _ = d.adopt_orphans();
            let mut retired = 0u64;
            while d.reclaim_quiescent() {
                retired += 1;
            }
            let recovery_us = t0.elapsed().as_micros();
            assert_eq!(
                d.segment_count(),
                1,
                "post-recovery shrink must reach the floor"
            );
            table.row(&[
                "lfrc+reclaim".into(),
                format!("1 ref; stuck at {peak} segs until recovery ({retired} retired after)"),
                churn.to_string(),
                (live - 1).to_string(),
                format!("{peak} segments"),
                recovery_us.to_string(),
                "nodes yes; segments only stop-the-world".into(),
            ]);
            assert!(
                d.leak_check().is_clean(),
                "lfrc reclaim stall must end clean"
            );
        }
    }

    println!("{}", table.render());
    if args.json {
        println!("{}", table.to_json());
    }
}

/// Magazine rows reuse the E9 columns: "stalled holds" carries the
/// magazine telemetry so the table shape (and JSON schema) stays stable.
#[allow(clippy::too_many_arguments)]
fn table_magazine_row(
    table: &mut Table,
    scheme: &str,
    churned: u64,
    unreclaimed: usize,
    cap: usize,
    stall_parked: usize,
    hit_rate: f64,
    footprint: usize,
    recovery_us: u128,
) {
    table.row(&[
        scheme.into(),
        format!("1 ref + {stall_parked} parked (mag cap {cap}, churn hit rate {hit_rate:.3})"),
        churned.to_string(),
        unreclaimed.to_string(),
        footprint.to_string(),
        recovery_us.to_string(),
        "yes (ref + magazine cap)".into(),
    ]);
}

/// Growth rows reuse the E9 columns: "stalled holds" carries the pool
/// telemetry so the table shape (and JSON schema) stays stable.
#[allow(clippy::too_many_arguments)]
fn table_growth_row(
    table: &mut Table,
    scheme: &str,
    churned: u64,
    unreclaimed: usize,
    capacity: usize,
    segments: usize,
    grown: u64,
    footprint: usize,
    recovery_us: u128,
) {
    table.row(&[
        scheme.into(),
        format!("1 ref; 8→{capacity} nodes, {segments} segs ({grown} grown)"),
        churned.to_string(),
        unreclaimed.to_string(),
        footprint.to_string(),
        recovery_us.to_string(),
        "yes (growth stops at working set)".into(),
    ]);
}
