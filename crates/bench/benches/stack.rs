//! E2 (micro) — Treiber stack push/pop pair cost per scheme,
//! single-threaded (the thread sweep is `e2_stack`).

use bench::timing::bench;
use wfrc_baselines::epoch::EbrDomain;
use wfrc_baselines::hazard::HpDomain;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_structures::epoch_stack::EpochStack;
use wfrc_structures::hp_stack::HpStack;
use wfrc_structures::stack::{Stack, StackCell};

fn main() {
    let group = "e2_stack_pair";

    {
        let d = WfrcDomain::<StackCell<u64>>::new(DomainConfig::new(1, 64));
        let h = d.register().unwrap();
        let s = Stack::new();
        bench(group, "wfrc", || {
            s.push(&h, 1).unwrap();
            s.pop(&h).unwrap()
        });
    }
    {
        let d = LfrcDomain::<StackCell<u64>>::new(1, 64);
        let h = d.register().unwrap();
        let s = Stack::new();
        bench(group, "lfrc", || {
            s.push(&h, 1).unwrap();
            s.pop(&h).unwrap()
        });
    }
    {
        let d = HpDomain::new(1);
        let mut h = d.register().unwrap();
        let s = HpStack::new();
        bench(group, "hazard", || {
            s.push(&mut h, 1u64);
            s.pop(&mut h).unwrap()
        });
    }
    {
        let d = EbrDomain::new(1);
        let h = d.register().unwrap();
        let s = EpochStack::new();
        bench(group, "epoch", || {
            s.push(&h, 1u64);
            s.pop(&h).unwrap()
        });
    }
}
