//! E3 (micro) — M&S queue enqueue/dequeue pair cost per scheme,
//! single-threaded (the thread sweep is `e3_queue`).

use criterion::{criterion_group, criterion_main, Criterion};

use wfrc_baselines::epoch::EbrDomain;
use wfrc_baselines::hazard::HpDomain;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_structures::epoch_queue::EpochQueue;
use wfrc_structures::hp_queue::HpQueue;
use wfrc_structures::queue::{Queue, QueueCell};

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_queue_pair");
    g.sample_size(20);

    {
        let d = WfrcDomain::<QueueCell<u64>>::new(DomainConfig::new(1, 64));
        let h = d.register().unwrap();
        let q = Queue::new(&h).unwrap();
        g.bench_function("wfrc", |b| {
            b.iter(|| {
                q.enqueue(&h, 1).unwrap();
                q.dequeue(&h).unwrap()
            })
        });
        q.dispose(&h);
    }
    {
        let d = LfrcDomain::<QueueCell<u64>>::new(1, 64);
        let h = d.register().unwrap();
        let q = Queue::new(&h).unwrap();
        g.bench_function("lfrc", |b| {
            b.iter(|| {
                q.enqueue(&h, 1).unwrap();
                q.dequeue(&h).unwrap()
            })
        });
        q.dispose(&h);
    }
    {
        let d = HpDomain::new(1);
        let mut h = d.register().unwrap();
        let q = HpQueue::new();
        g.bench_function("hazard", |b| {
            b.iter(|| {
                q.enqueue(&mut h, 1u64);
                q.dequeue(&mut h).unwrap()
            })
        });
    }
    {
        let d = EbrDomain::new(1);
        let h = d.register().unwrap();
        let q = EpochQueue::new();
        g.bench_function("epoch", |b| {
            b.iter(|| {
                q.enqueue(&h, 1u64);
                q.dequeue(&h).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
