//! E3 (micro) — M&S queue enqueue/dequeue pair cost per scheme,
//! single-threaded (the thread sweep is `e3_queue`).

use bench::timing::bench;
use wfrc_baselines::epoch::EbrDomain;
use wfrc_baselines::hazard::HpDomain;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_structures::epoch_queue::EpochQueue;
use wfrc_structures::hp_queue::HpQueue;
use wfrc_structures::queue::{Queue, QueueCell};

fn main() {
    let group = "e3_queue_pair";

    {
        let d = WfrcDomain::<QueueCell<u64>>::new(DomainConfig::new(1, 64));
        let h = d.register().unwrap();
        let q = Queue::new(&h).unwrap();
        bench(group, "wfrc", || {
            q.enqueue(&h, 1).unwrap();
            q.dequeue(&h).unwrap()
        });
        q.dispose(&h);
    }
    {
        let d = LfrcDomain::<QueueCell<u64>>::new(1, 64);
        let h = d.register().unwrap();
        let q = Queue::new(&h).unwrap();
        bench(group, "lfrc", || {
            q.enqueue(&h, 1).unwrap();
            q.dequeue(&h).unwrap()
        });
        q.dispose(&h);
    }
    {
        let d = HpDomain::new(1);
        let mut h = d.register().unwrap();
        let q = HpQueue::new();
        bench(group, "hazard", || {
            q.enqueue(&mut h, 1u64);
            q.dequeue(&mut h).unwrap()
        });
    }
    {
        let d = EbrDomain::new(1);
        let h = d.register().unwrap();
        let q = EpochQueue::new();
        bench(group, "epoch", || {
            q.enqueue(&h, 1u64);
            q.dequeue(&h).unwrap()
        });
    }
}
