//! E5 (micro) — alloc/free pair cost, wait-free striped free-list vs. the
//! single-head Treiber baseline, single-threaded (the contended sweep is
//! `e5_alloc_interference`). `Box` allocation is included as the
//! conventional-allocator reference point.

use std::hint::black_box;

use bench::timing::bench;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};

fn main() {
    let group = "e5_freelist_pair";

    {
        let d = WfrcDomain::<u64>::new(DomainConfig::new(1, 8));
        let h = d.register().unwrap();
        bench(group, "wfrc_alloc_free", || {
            let n = h.alloc_raw().expect("pool sized generously");
            // SAFETY: we own the alloc reference.
            unsafe { h.release_raw(black_box(n)) };
        });
    }
    {
        let d = LfrcDomain::<u64>::new(1, 8);
        let h = d.register().unwrap();
        bench(group, "lfrc_alloc_free", || {
            let n = h.alloc_raw().expect("pool sized generously");
            // SAFETY: we own the alloc reference.
            unsafe { h.release_raw(black_box(n)) };
        });
    }
    bench(group, "heap_box_alloc_free", || {
        let n = Box::new(black_box(0u64));
        black_box(n);
    });
}
