//! E5 (micro) — alloc/free pair cost, wait-free striped free-list vs. the
//! single-head Treiber baseline, single-threaded (the contended sweep is
//! `e5_alloc_interference`). `Box` allocation is included as the
//! conventional-allocator reference point.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};

fn bench_freelist(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_freelist_pair");
    g.sample_size(20);

    {
        let d = WfrcDomain::<u64>::new(DomainConfig::new(1, 8));
        let h = d.register().unwrap();
        g.bench_function("wfrc_alloc_free", |b| {
            b.iter(|| {
                let n = h.alloc_raw().expect("pool sized generously");
                // SAFETY: we own the alloc reference.
                unsafe { h.release_raw(black_box(n)) };
            })
        });
    }
    {
        let d = LfrcDomain::<u64>::new(1, 8);
        let h = d.register().unwrap();
        g.bench_function("lfrc_alloc_free", |b| {
            b.iter(|| {
                let n = h.alloc_raw().expect("pool sized generously");
                // SAFETY: we own the alloc reference.
                unsafe { h.release_raw(black_box(n)) };
            })
        });
    }
    g.bench_function("heap_box_alloc_free", |b| {
        b.iter(|| {
            let n = Box::new(black_box(0u64));
            black_box(n);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_freelist);
criterion_main!(benches);
