//! E1 (micro) — skiplist priority queue insert+delete-min pair cost,
//! wait-free vs. lock-free memory management, at a steady-state size of
//! 512 elements (the thread sweep is `e1_priority_queue`).

use bench::timing::bench;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, WfrcDomain};
use wfrc_sim::SmallRng;
use wfrc_structures::manager::RcMmDomain;
use wfrc_structures::priority_queue::{PqCell, PriorityQueue};

const STEADY: usize = 512;

fn run<D: RcMmDomain<PqCell<u64>>>(name: &str, d: &D) {
    let h = d.register_mm().unwrap();
    let pq = PriorityQueue::new(&h).unwrap();
    let mut rng = SmallRng::seed_from_u64(42);
    for _ in 0..STEADY {
        let k = rng.gen_range(1 << 20);
        pq.insert(&h, k, k).unwrap();
    }
    bench("e1_pq_pair", name, || {
        let k = rng.gen_range(1 << 20);
        pq.insert(&h, k, k).unwrap();
        pq.delete_min(&h).unwrap()
    });
    while pq.delete_min(&h).is_some() {}
    pq.dispose(&h);
}

fn main() {
    let wf = WfrcDomain::<PqCell<u64>>::new(DomainConfig::new(1, STEADY * 2 + 64));
    run("wfrc", &wf);
    let lf = LfrcDomain::<PqCell<u64>>::new(1, STEADY * 2 + 64);
    run("lfrc", &lf);
}
