//! E6 — uncontended `DeRefLink` cost: what does wait-freedom cost when
//! nobody is interfering?
//!
//! Three rungs: a plain `AtomicPtr` load (the hardware floor), the
//! Valois-style lock-free dereference (one FAA + re-check), and the
//! wait-free dereference (announce store + FAA + retract SWAP). The
//! deltas are the per-operation price of each scheme's guarantee.

use std::hint::black_box;

use bench::timing::bench;
use wfrc_baselines::LfrcDomain;
use wfrc_core::{DomainConfig, Link, WfrcDomain};

fn main() {
    let group = "e6_deref_uncontended";

    // Floor: plain atomic load.
    {
        let mut x = 0u64;
        let word = core::sync::atomic::AtomicPtr::new(&mut x as *mut u64);
        bench(group, "plain_atomic_load", || {
            black_box(word.load(core::sync::atomic::Ordering::SeqCst))
        });
    }

    // Wait-free scheme.
    {
        let d = WfrcDomain::<u64>::new(DomainConfig::new(2, 4));
        let h = d.register().unwrap();
        let node = h.alloc_with(|v| *v = 1).unwrap();
        let link = Link::null();
        h.store(&link, Some(&node));
        bench(group, "wfrc_deref_release", || {
            // SAFETY: link holds a node of this domain; we release the
            // acquired count immediately.
            unsafe {
                let p = h.deref_raw(&link);
                h.release_raw(black_box(p));
            }
        });
        h.store(&link, None);
    }

    // Lock-free baseline.
    {
        let d = LfrcDomain::<u64>::new(2, 4);
        let h = d.register().unwrap();
        let node = h.alloc_raw().unwrap();
        let link = Link::null();
        // SAFETY: transfer the alloc count into the link.
        unsafe { h.store_link_raw(&link, node) };
        bench(group, "lfrc_deref_release", || {
            // SAFETY: as above.
            unsafe {
                let p = h.deref_raw(&link);
                h.release_raw(black_box(p));
            }
        });
        // SAFETY: teardown — take the link's count back and drop it.
        unsafe {
            let p = link.swap_raw(core::ptr::null_mut());
            h.release_raw(p);
        }
    }
}
