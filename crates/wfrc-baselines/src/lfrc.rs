//! Lock-free reference counting: the paper's comparator.
//!
//! This is the scheme of Valois (PhD thesis, 1995) with the Michael & Scott
//! (1995) correction — what the paper calls "the default lock-free memory
//! management scheme" in its §5 experiment. It shares everything with
//! `wfrc-core` except the two places the paper improves:
//!
//! * **Dereference** (`DeRefLink`): optimistically `FAA(+2)` the target and
//!   *re-check* the link; on mismatch, release and retry. "However, the
//!   number of repeats is unbounded" (paper §3) — a fast writer can starve
//!   a reader forever. The retry count is recorded per call so experiment
//!   E4 can plot the unboundedness against the wait-free scheme's zero.
//! * **Free-list**: a single Treiber list with one head. Every alloc and
//!   free CASes the same word; one winner fails all other attempts, so both
//!   operations are only lock-free (experiment E5/E7 measures the resulting
//!   retry tails and starvation).
//!
//! The node representation, the even/odd `mm_ref` convention, the arena
//! type-stability, and the recursive release of held links (drained
//! iteratively) are identical to `wfrc-core` — deliberately, so E1/E4/E5
//! compare only the algorithmic difference and not incidental layout
//! choices.

use core::marker::PhantomData;
use core::ptr;
use core::sync::atomic::Ordering;

use wfrc_core::arena::{page_carved, Arena, GrowOutcome};
use wfrc_core::class::RawBuf;
use wfrc_core::counters::OpCounters;
use wfrc_core::magazine::{clamped_cap, Magazines};
use wfrc_core::oom::OutOfMemory;
use wfrc_core::Growth;
use wfrc_core::{AtomicWeak, Claim, ClassConfig, ClassLeak, Link, Node, RawBytes, RcObject};
use wfrc_primitives::{AtomicWord, Backoff, WordPtr};

#[cfg(not(feature = "no-pad"))]
type HeadCell<T> = wfrc_primitives::CachePadded<WordPtr<Node<T>>>;
#[cfg(feature = "no-pad")]
type HeadCell<T> = WordPtr<Node<T>>;

/// Registration-slot / telemetry word, cache-padded like the wait-free
/// domain's (`wfrc_core::domain`), so the two schemes pay the same layout
/// costs in E4/E5 comparisons.
#[cfg(not(feature = "no-pad"))]
type SlotWord = wfrc_primitives::CachePadded<AtomicWord>;
#[cfg(feature = "no-pad")]
type SlotWord = AtomicWord;

fn new_slot_word(v: usize) -> SlotWord {
    #[cfg(not(feature = "no-pad"))]
    {
        wfrc_primitives::CachePadded::new(AtomicWord::new(v))
    }
    #[cfg(feature = "no-pad")]
    {
        AtomicWord::new(v)
    }
}

/// Registration slot states — the same three-state protocol as
/// `wfrc_core::domain` (free / taken / orphaned-awaiting-adoption).
const SLOT_FREE: usize = 0;
const SLOT_TAKEN: usize = 1;
const SLOT_ORPHANED: usize = 2;

/// A lock-free reference-counted memory domain (Valois-style baseline).
pub struct LfrcDomain<T: RcObject> {
    /// Segmented node storage — the same growable arena as `wfrc-core`, so
    /// the growth-path experiments compare schemes over identical pools.
    arena: Arena<T>,
    /// The single free-list head all threads contend on.
    head: HeadCell<T>,
    slots: Box<[SlotWord]>,
    /// Whether retry loops back off (the NOBLE-era default). Disable for
    /// raw retry-count measurements.
    backoff: bool,
    /// Per-thread allocation magazines — the same layer as
    /// [`wfrc_core::magazine`], so magazine-mode experiments compare the
    /// schemes apples-to-apples. Disabled (cap 0) by default.
    mag: Magazines<T>,
    /// Byte classes mirroring [`wfrc_core::class`], each a page-carved
    /// arena behind a **single** Treiber head (the scheme's signature
    /// bottleneck, reproduced per class). Empty by default; see
    /// [`LfrcDomain::set_classes`].
    classes: Box<[Box<dyn LfrcClassOps>]>,
    /// Cumulative [`LfrcDomain::adopt_orphans`] telemetry.
    orphans_adopted: SlotWord,
    orphan_nodes_recovered: SlotWord,
    /// Domain-lifetime snapshot-path telemetry, folded from dropped
    /// handles (the apples-to-apples mirror of the wait-free scheme's
    /// snapshot counters, surfaced in [`LfrcDomain::leak_check`] JSON).
    snapshot_derefs: core::sync::atomic::AtomicU64,
    upgrade_slow: core::sync::atomic::AtomicU64,
    /// Weak-reference telemetry, folded from dropped handles (the mirror of
    /// the wait-free scheme's `SnapStats` weak counters).
    weak_upgrades: core::sync::atomic::AtomicU64,
    upgrade_failed: core::sync::atomic::AtomicU64,
    /// Installed fault schedule; `None` = no injection even with the
    /// feature compiled in.
    #[cfg(feature = "fault-injection")]
    faults: Option<std::sync::Arc<wfrc_core::fault::FaultPlan>>,
}

impl<T: RcObject + Default> LfrcDomain<T> {
    /// Creates a domain with `capacity` default-initialized nodes and
    /// `max_threads` registration slots.
    pub fn new(max_threads: usize, capacity: usize) -> Self {
        Self::with_init(max_threads, capacity, |_| T::default())
    }

    /// Creates a growable domain: `capacity` initial default-initialized
    /// nodes, growing under `growth` exactly like
    /// [`wfrc_core::WfrcDomain`] (new segments are seeded onto the single
    /// free-list head).
    pub fn with_growth(max_threads: usize, capacity: usize, growth: Growth) -> Self {
        Self::with_growth_init(max_threads, capacity, growth, |_| T::default())
    }
}

impl<T: RcObject> LfrcDomain<T> {
    /// Creates a domain initializing payload `i` with `init(i)`.
    pub fn with_init(
        max_threads: usize,
        capacity: usize,
        init: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> Self {
        Self::with_growth_init(max_threads, capacity, Growth::Disabled, init)
    }

    /// Creates a growable domain initializing payload `i` with `init(i)`.
    pub fn with_growth_init(
        max_threads: usize,
        capacity: usize,
        growth: Growth,
        init: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> Self {
        assert!(max_threads > 0);
        let arena = Arena::with_growth(capacity, growth, init);
        // Seed: chain every node into the single free-list.
        for i in 0..capacity {
            let next = if i + 1 < capacity {
                arena.node_ptr(i + 1)
            } else {
                ptr::null_mut()
            };
            arena.node(i).mm_next().store(next);
        }
        let head = {
            let h = new_head::<T>();
            h_store(&h, arena.node_ptr(0));
            h
        };
        Self {
            arena,
            head,
            slots: (0..max_threads).map(|_| new_slot_word(SLOT_FREE)).collect(),
            backoff: true,
            mag: Magazines::new(max_threads, 0),
            classes: Box::new([]),
            orphans_adopted: new_slot_word(0),
            orphan_nodes_recovered: new_slot_word(0),
            snapshot_derefs: core::sync::atomic::AtomicU64::new(0),
            upgrade_slow: core::sync::atomic::AtomicU64::new(0),
            weak_upgrades: core::sync::atomic::AtomicU64::new(0),
            upgrade_failed: core::sync::atomic::AtomicU64::new(0),
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }

    /// Installs a fault schedule (see [`wfrc_core::fault`]). Must happen
    /// before the domain is shared, like [`LfrcDomain::set_backoff`].
    #[cfg(feature = "fault-injection")]
    pub fn set_fault_plan(&mut self, plan: std::sync::Arc<wfrc_core::fault::FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Disables backoff in retry loops (for step-count experiments).
    pub fn set_backoff(&mut self, on: bool) {
        self.backoff = on;
    }

    /// Enables per-thread allocation magazines of (at most) `cap` nodes,
    /// clamped exactly like [`wfrc_core::DomainConfig::with_magazine`].
    /// Must be called before the domain is shared (hence `&mut self`, the
    /// same pattern as [`LfrcDomain::set_backoff`]).
    pub fn set_magazine(&mut self, cap: usize) {
        let threads = self.slots.len();
        self.mag = Magazines::new(threads, clamped_cap(cap, self.arena.capacity(), threads));
    }

    /// Effective per-thread magazine capacity (0 = magazines disabled).
    pub fn magazine_cap(&self) -> usize {
        self.mag.cap()
    }

    /// Installs byte classes mirroring
    /// [`wfrc_core::DomainConfig::with_classes`] (same sizes, same
    /// page-carved capacities, same magazine clamping) — except that each
    /// class free-list is a **single** Treiber head, the scheme's
    /// signature bottleneck. Must be called before the domain is shared,
    /// like [`LfrcDomain::set_backoff`].
    pub fn set_classes(&mut self, classes: Vec<ClassConfig>) {
        assert!(
            classes.len() <= wfrc_core::MAX_CLASSES,
            "at most {} byte classes per domain",
            wfrc_core::MAX_CLASSES
        );
        let n = self.slots.len();
        self.classes = classes.iter().map(|cfg| build_lfrc_class(cfg, n)).collect();
    }

    /// Number of configured byte classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Block size of class `class`.
    ///
    /// # Panics
    /// If `class >= self.class_count()`.
    pub fn class_block_size(&self, class: usize) -> usize {
        self.classes[class].block_size()
    }

    /// Current block capacity of class `class`.
    ///
    /// # Panics
    /// If `class >= self.class_count()`.
    pub fn class_capacity(&self, class: usize) -> usize {
        self.classes[class].capacity()
    }

    /// Number of live (non-retired) segments backing class `class`.
    ///
    /// # Panics
    /// If `class >= self.class_count()`.
    pub fn class_segments(&self, class: usize) -> usize {
        self.classes[class].segment_count()
    }

    /// Retires the trailing segment of byte class `class` if every one of
    /// its blocks is free — the class analogue of
    /// [`LfrcDomain::reclaim_quiescent`], with the same stop-the-world
    /// contract (`&mut self`). Returns `true` when a segment was retired.
    ///
    /// # Panics
    /// If `class >= self.class_count()`.
    pub fn reclaim_class_quiescent(&mut self, class: usize) -> bool {
        let threads = self.slots.len();
        self.classes[class].reclaim_quiescent(threads)
    }

    /// Registers the calling context. Equivalent to
    /// [`LfrcDomain::try_register`] (same non-panicking contract as
    /// `wfrc_core::WfrcDomain::register`).
    pub fn register(&self) -> Result<LfrcHandle<'_, T>, wfrc_core::domain::RegistryFull> {
        self.try_register()
    }

    /// Non-panicking registration: claims a free thread id, or reports
    /// [`wfrc_core::domain::RegistryFull`] if all slots are in use.
    pub fn try_register(&self) -> Result<LfrcHandle<'_, T>, wfrc_core::domain::RegistryFull> {
        for (tid, slot) in self.slots.iter().enumerate() {
            // Same orderings (and argument) as `wfrc_core::domain::register`:
            // Relaxed probe, Acquire claim pairing with the Release free.
            if slot.load_with(Ordering::Relaxed) == SLOT_FREE
                && slot.cas_with(SLOT_FREE, SLOT_TAKEN, Ordering::Acquire, Ordering::Relaxed)
            {
                return Ok(LfrcHandle {
                    domain: self,
                    tid,
                    counters: OpCounters::new(),
                    _not_sync: PhantomData,
                });
            }
        }
        Err(wfrc_core::domain::RegistryFull)
    }

    /// Number of orphaned slots awaiting [`LfrcDomain::adopt_orphans`].
    pub fn orphaned_threads(&self) -> usize {
        // Relaxed: diagnostic only; `adopt_orphans` re-checks with a CAS.
        self.slots
            .iter()
            .filter(|s| s.load_with(Ordering::Relaxed) == SLOT_ORPHANED)
            .count()
    }

    /// Cumulative orphan slots reclaimed over the domain's lifetime.
    pub fn orphans_adopted(&self) -> usize {
        // Relaxed: telemetry, no synchronization role.
        self.orphans_adopted.load_with(Ordering::Relaxed)
    }

    /// Cumulative nodes recovered from orphans' magazines.
    pub fn orphan_nodes_recovered(&self) -> usize {
        // Relaxed: telemetry, no synchronization role.
        self.orphan_nodes_recovered.load_with(Ordering::Relaxed)
    }

    /// Reclaims every orphaned slot. LFRC has no announcement rows or gift
    /// slots, so a dead thread's only recoverable resource is its
    /// allocation magazine: drain it back to the single free-list head and
    /// reopen the slot. Mirrors [`wfrc_core::WfrcDomain::adopt_orphans`]
    /// (same CAS-claimed exclusivity, same report type; the announcement
    /// and gift fields stay 0 here).
    ///
    /// Like the WFRC adopter, runs injection-shielded (see
    /// `wfrc_core::fault::shielded`) so the corpse's still-armed fault
    /// rules cannot fire inside its recovery.
    pub fn adopt_orphans(&self) -> wfrc_core::AdoptReport {
        #[cfg(feature = "fault-injection")]
        return wfrc_core::fault::shielded(|| self.adopt_orphans_impl());
        #[cfg(not(feature = "fault-injection"))]
        self.adopt_orphans_impl()
    }

    fn adopt_orphans_impl(&self) -> wfrc_core::AdoptReport {
        let mut report = wfrc_core::AdoptReport::default();
        for (tid, slot) in self.slots.iter().enumerate() {
            // Acquire claim pairs with the Release orphaning swap, making
            // the corpse's magazine vector visible to this drain.
            if !slot.cas_with(
                SLOT_ORPHANED,
                SLOT_TAKEN,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                continue;
            }
            // SAFETY: the CAS above made us the exclusive owner of `tid`.
            let batch = unsafe { self.mag.take(tid, usize::MAX) };
            if !batch.is_empty() {
                report.magazine_nodes_recovered += batch.len();
                for w in batch.windows(2) {
                    // SAFETY: claimed nodes exclusively owned by this drain.
                    unsafe { (*w[0]).mm_next().store(w[1]) };
                }
                self.push_chain_raw(batch[0], batch[batch.len() - 1]);
            }
            // Per-class magazines are the corpse's only class-side
            // resource (LFRC classes have no gifts or announcements).
            for class in self.classes.iter() {
                report.class_nodes_recovered += class.adopt_slot(tid);
            }
            // Release reopens the slot, publishing the recovery to the
            // `register` that next claims this id.
            slot.store_with(SLOT_FREE, Ordering::Release);
            report.orphans_adopted += 1;
        }
        // Relaxed: monotonic telemetry counters, read by diagnostics only.
        self.orphans_adopted
            .faa_with(report.orphans_adopted as isize, Ordering::Relaxed);
        self.orphan_nodes_recovered
            .faa_with(report.nodes_recovered() as isize, Ordering::Relaxed);
        report
    }

    /// Treiber push of an exclusively-owned, pre-linked chain
    /// (`first..=last`) onto the single head. Returns the retry count.
    fn push_chain_raw(&self, first: *mut Node<T>, last: *mut Node<T>) -> u64 {
        let mut backoff = Backoff::new();
        let mut retries: u64 = 0;
        loop {
            // Relaxed head load / Release publish CAS — the same Treiber
            // orderings (and release-sequence argument) as
            // `wfrc_core::freelist::push_chain`.
            let head = self.head.load_with(Ordering::Relaxed);
            // SAFETY: `last` is exclusively ours until the CAS publishes it.
            unsafe { (*last).mm_next().store(head) };
            if self
                .head
                .cas_with(head, first, Ordering::Release, Ordering::Relaxed)
            {
                return retries;
            }
            retries += 1;
            if self.backoff {
                backoff.snooze();
            }
        }
    }

    /// Node pool size (current, including grown segments).
    pub fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Number of arena segments currently published (1 until growth).
    pub fn segment_count(&self) -> usize {
        self.arena.segment_count()
    }

    /// Cumulative segments retired by [`LfrcDomain::reclaim_quiescent`].
    pub fn segments_retired(&self) -> usize {
        self.arena.segments_retired()
    }

    /// Cumulative RETIRED slots revived by growth.
    pub fn segments_revived(&self) -> usize {
        self.arena.segments_revived()
    }

    /// Retires the trailing segment if every one of its nodes is free,
    /// returning its slab to the allocator. Returns `true` when a segment
    /// was retired (call again to shrink further).
    ///
    /// LFRC has no epochs or announcement rows, so it cannot reclaim
    /// concurrently — `&mut self` demands quiescence (no live handles
    /// borrow the domain), which makes the whole protocol a private
    /// sweep: detach the single head chain, partition out the candidate
    /// segment's nodes, and either complete the retire or push everything
    /// back. This is the apples-to-apples counterpart of
    /// `wfrc_core::ThreadHandle::reclaim` for the E5 `--reclaim`
    /// experiment: same arena state machine, but stop-the-world instead of
    /// wait-free.
    pub fn reclaim_quiescent(&mut self) -> bool {
        let s = self.arena.segment_count();
        if s < 2 {
            return false;
        }
        // LFRC's alloc/free hot paths don't maintain the per-segment
        // occupancy trigger (the private sweep below is authoritative
        // under `&mut self`), so arm the counter to pass the shared claim
        // gate. A sweep that then finds live nodes simply aborts.
        let tail = s - 1;
        if let (Some(start), Some(len), Some(have)) = (
            self.arena.seg_start(tail),
            self.arena.seg_len(tail),
            self.arena.seg_free_count(tail),
        ) {
            if have < len {
                self.arena
                    .note_seeded(self.arena.node_ptr(start), len - have);
            }
        }
        let Some(slot) = self.arena.try_begin_tail_retire() else {
            return false;
        };
        let len = self.arena.seg_len(slot).unwrap_or(0);
        // `&mut self`: no handle can exist, so magazines have no owner —
        // drain them all back to the head so parked nodes can't hide from
        // the sweep. (Handle drop already drains, so this usually no-ops;
        // it matters only after `std::mem::forget`-style leaks.)
        for tid in 0..self.slots.len() {
            // SAFETY: exclusive access to the whole domain.
            let batch = unsafe { self.mag.take(tid, usize::MAX) };
            if !batch.is_empty() {
                for w in batch.windows(2) {
                    // SAFETY: privately owned chain.
                    unsafe { (*w[0]).mm_next().store(w[1]) };
                }
                self.push_chain_raw(batch[0], batch[batch.len() - 1]);
            }
        }
        // Detach the entire free-list and partition it privately.
        let mut p = self.head.swap_with(ptr::null_mut(), Ordering::Acquire);
        let mut candidates: Vec<*mut Node<T>> = Vec::with_capacity(len);
        let mut keep: Vec<*mut Node<T>> = Vec::new();
        while !p.is_null() {
            // SAFETY: detached chain is privately owned.
            let next = unsafe { (*p).mm_next().load() };
            if self.arena.seg_contains(slot, p) {
                candidates.push(p);
            } else {
                keep.push(p);
            }
            p = next;
        }
        let complete = candidates.len() == len
            // SAFETY: candidate nodes are privately held; headers stable.
            && candidates.iter().all(|&n| unsafe { (*n).load_ref() } == 1)
            && self.arena.finish_retire(slot);
        if !complete {
            // Some nodes are live (or the table raced): hand everything
            // back and reopen the segment.
            keep.append(&mut candidates);
            self.arena.abort_retire(slot);
        }
        if !keep.is_empty() {
            for w in keep.windows(2) {
                // SAFETY: privately owned chain.
                unsafe { (*w[0]).mm_next().store(w[1]) };
            }
            self.push_chain_raw(keep[0], keep[keep.len() - 1]);
        }
        complete
    }

    /// Quiescent audit, same classification as
    /// [`wfrc_core::WfrcDomain::leak_check`] (LFRC has no gift parking, so
    /// `parked_gifts` is always 0; magazine-parked nodes are counted in
    /// `magazine_nodes` just like the wait-free scheme's).
    pub fn leak_check(&self) -> wfrc_core::LeakReport {
        let parked = self.mag.parked();
        let mut report = wfrc_core::LeakReport {
            capacity: self.arena.capacity(),
            segments: self.arena.segment_count(),
            resident_segments: self.arena.segment_count(),
            segments_retired: self.arena.segments_retired(),
            snapshot_derefs: self.snapshot_derefs.load(Ordering::Relaxed),
            // LFRC counts on every deref, so nothing is ever deferred and
            // an "upgrade" is just a counted deref; `deferred_decs` stays 0.
            upgrade_slow: self.upgrade_slow.load(Ordering::Relaxed),
            weak_upgrades: self.weak_upgrades.load(Ordering::Relaxed),
            upgrade_failed: self.upgrade_failed.load(Ordering::Relaxed),
            ..Default::default()
        };
        for node in self.arena.iter() {
            let r = node.load_ref();
            let low = r & Node::<T>::STRONG_MASK;
            let weak = (r & Node::<T>::WEAK_MASK) >> 32;
            let dead = r & Node::<T>::DEAD != 0;
            report.weak_count += weak as u64;
            let ptr = node as *const _ as usize;
            if parked.contains(&ptr) {
                if r == 1 {
                    report.magazine_nodes += 1;
                } else {
                    report.corrupt_nodes += 1;
                }
            } else if r == 1 {
                report.free_nodes += 1;
            } else if dead && low == 1 && weak > 0 {
                // DEAD-but-weak: payload reclaimed, header pinned by weak
                // references — same classification as the wait-free audit.
                report.weak_nodes += 1;
            } else if !dead && low.is_multiple_of(2) && low >= 2 {
                report.live_nodes += 1;
            } else {
                report.corrupt_nodes += 1;
            }
        }
        report.classes = self.classes.iter().map(|c| c.leak()).collect();
        report
    }
}

// SAFETY: same argument as WfrcDomain — all shared state is atomic, payload
// access is protocol-mediated, T: Send + Sync via RcObject.
unsafe impl<T: RcObject> Sync for LfrcDomain<T> {}
unsafe impl<T: RcObject> Send for LfrcDomain<T> {}

fn new_head<T>() -> HeadCell<T> {
    #[cfg(not(feature = "no-pad"))]
    {
        wfrc_primitives::CachePadded::new(WordPtr::null())
    }
    #[cfg(feature = "no-pad")]
    {
        WordPtr::null()
    }
}

fn h_store<T>(h: &HeadCell<T>, p: *mut Node<T>) {
    h.store(p);
}

/// A registered thread's view of an [`LfrcDomain`]. Mirrors
/// [`wfrc_core::ThreadHandle`]'s raw layer so data structures can be generic
/// over both schemes.
pub struct LfrcHandle<'d, T: RcObject> {
    domain: &'d LfrcDomain<T>,
    tid: usize,
    counters: OpCounters,
    _not_sync: PhantomData<core::cell::Cell<()>>,
}

impl<'d, T: RcObject> LfrcHandle<'d, T> {
    /// This handle's thread id.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The domain this handle belongs to.
    pub fn domain(&self) -> &'d LfrcDomain<T> {
        self.domain
    }

    /// The handle's operation counters.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Allocates a node from the single free-list (lock-free: retries on
    /// CAS failure). Returns a node with one reference (`mm_ref == 2`) and
    /// stale payload.
    pub fn alloc_raw(&self) -> Result<*mut Node<T>, OutOfMemory> {
        OpCounters::bump(&self.counters.alloc_calls);
        if let Some(node) = self.magazine_pop() {
            return Ok(node);
        }
        let mut backoff = Backoff::new();
        let mut iters: u64 = 0;
        loop {
            iters += 1;
            // Acquire: pairs with the Release push that published `node`,
            // making its `mm_next` and recycled payload visible.
            let node = self.domain.head.load_with(Ordering::Acquire);
            if node.is_null() {
                // Valois' scheme has no stripe to advance to: an observed
                // empty head means the pool looks dry. Try to grow the
                // arena (a no-op under `Growth::Disabled`); only when the
                // policy is exhausted is this out-of-memory (nodes in
                // flight during concurrent pops can make this spuriously
                // early — the same caveat as the wait-free scheme's retry
                // bound, noted in DESIGN.md).
                OpCounters::bump(&self.counters.alloc_slow_path);
                if self.try_grow() {
                    continue;
                }
                OpCounters::add(&self.counters.alloc_iters, iters);
                OpCounters::record_max(&self.counters.max_alloc_iters, iters);
                return Err(OutOfMemory);
            }
            // SAFETY: arena node; headers are type-stable.
            let nref = unsafe { &*node };
            nref.faa_ref(2); // pin against reinsertion (same as paper line A9)
            let next = nref.mm_next().load();
            // AcqRel pop: same argument as the wait-free A10 (the store
            // side stays in the pusher's release sequence).
            if self
                .domain
                .head
                .cas_with(node, next, Ordering::AcqRel, Ordering::Relaxed)
            {
                nref.faa_ref(-1); // claimed free node (1+2) -> one live ref (2)
                OpCounters::add(&self.counters.alloc_iters, iters);
                OpCounters::record_max(&self.counters.max_alloc_iters, iters);
                return Ok(node);
            }
            OpCounters::bump(&self.counters.alloc_cas_failures);
            // SAFETY: we own the +2 pin we just added.
            unsafe { self.release_raw(node) };
            if self.domain.backoff {
                backoff.snooze();
            }
        }
    }

    /// Valois/Michael–Scott `DeRefLink`: optimistic increment + re-check,
    /// retried unboundedly.
    ///
    /// # Safety
    /// `link` must only ever hold nodes of this handle's domain.
    pub unsafe fn deref_raw(&self, link: &Link<T>) -> *mut Node<T> {
        OpCounters::bump(&self.counters.deref_calls);
        let mut backoff = Backoff::new();
        let mut retries: u64 = 0;
        loop {
            // Raw word, possibly carrying a deletion mark in bit 0 — a
            // marked link still points to its node.
            let raw = link.load_raw();
            let node = wfrc_primitives::tagged::without_tag(raw);
            if node.is_null() {
                self.note_deref_retries(retries);
                return node;
            }
            // Between the read and the optimistic FAA — the race Valois'
            // re-check loop pays for. A death here holds nothing yet.
            #[cfg(feature = "fault-injection")]
            self.fault_hit(wfrc_core::fault::FaultSite::DerefFaa);
            // SAFETY: arena node; type-stable header makes the optimistic
            // FAA safe even if the node was just reclaimed.
            unsafe { (*node).faa_ref(2) };
            // Re-check against the raw word (mark included): a mark-only
            // change leaves the target identical, so it must not retry.
            if link.load_raw() == raw {
                self.note_deref_retries(retries);
                return node;
            }
            // The link moved on: our increment may be on a stale or even
            // reclaimed node. Undo and retry — this is the unbounded loop
            // the wait-free scheme eliminates.
            retries += 1;
            // SAFETY: we own the +2 we just added.
            unsafe { self.release_raw(node) };
            if self.domain.backoff {
                backoff.snooze();
            }
        }
    }

    /// One growth step: returns true when capacity grew (by this thread or
    /// a concurrent winner) and the allocation loop should re-scan.
    fn try_grow(&self) -> bool {
        match self.domain.arena.try_grow() {
            GrowOutcome::Grew { nodes, revived } => {
                OpCounters::bump(&self.counters.segments_grown);
                if revived {
                    OpCounters::bump(&self.counters.segments_revived);
                }
                OpCounters::add(&self.counters.nodes_seeded, nodes.len() as u64);
                // A death between winning the growth CAS and seeding would
                // strand the whole segment; the completion seeds it first.
                #[cfg(feature = "fault-injection")]
                self.fault_hit_or(wfrc_core::fault::FaultSite::GrowSeed, || {
                    self.seed_grown(nodes);
                });
                self.seed_grown(nodes);
                true
            }
            GrowOutcome::Lost => true,
            GrowOutcome::AtCapacity => false,
        }
    }

    /// Chains a freshly grown segment's nodes and pushes the whole chain
    /// with one CAS onto the single head (Treiber push of a segment).
    fn seed_grown(&self, nodes: &[Node<T>]) {
        let first = &nodes[0] as *const Node<T> as *mut Node<T>;
        for w in nodes.windows(2) {
            w[0].mm_next()
                .store(&w[1] as *const Node<T> as *mut Node<T>);
        }
        let last = &nodes[nodes.len() - 1];
        let mut backoff = Backoff::new();
        loop {
            // Relaxed head load / Release publish: same as push_chain_raw.
            let head = self.domain.head.load_with(Ordering::Relaxed);
            last.mm_next().store(head);
            if self
                .domain
                .head
                .cas_with(head, first, Ordering::Release, Ordering::Relaxed)
            {
                break;
            }
            if self.domain.backoff {
                backoff.snooze();
            }
        }
    }

    fn note_deref_retries(&self, retries: u64) {
        OpCounters::add(&self.counters.deref_retries, retries);
        OpCounters::record_max(&self.counters.max_deref_retries, retries);
    }

    /// `ReleaseRef`: identical semantics to the wait-free scheme's
    /// (including the iterative drain of held links), but reclaimed nodes
    /// go to the single contended free-list.
    ///
    /// # Safety
    /// The caller must own an unreleased reference on `node` (non-null,
    /// this domain).
    pub unsafe fn release_raw(&self, node: *mut Node<T>) {
        debug_assert!(!node.is_null());
        // A death at the FAA must not forget the caller's count — the
        // completion performs the whole release (same contract as the
        // wait-free scheme's ReleaseFaa site).
        #[cfg(feature = "fault-injection")]
        self.fault_hit_or(wfrc_core::fault::FaultSite::ReleaseFaa, || {
            // SAFETY: forwarded caller contract.
            unsafe { self.release_raw_body(node) };
        });
        // SAFETY: forwarded caller contract.
        unsafe { self.release_raw_body(node) };
    }

    /// # Safety
    /// Same contract as [`LfrcHandle::release_raw`].
    unsafe fn release_raw_body(&self, node: *mut Node<T>) {
        let mut pending: Option<Vec<*mut Node<T>>> = None;
        let mut cur = node;
        loop {
            OpCounters::bump(&self.counters.releases);
            // SAFETY: arena node.
            let n = unsafe { &*cur };
            n.faa_ref(-2);
            match n.try_claim_weak() {
                Claim::Busy => {
                    // Our decrement may have been the speculative bump that
                    // blocked a DEAD header's finalize — if the word now
                    // reads the bare sentinel, we inherit the free.
                    if n.maybe_finalize() {
                        self.free_node(cur);
                    }
                }
                claim => {
                    OpCounters::bump(&self.counters.reclaims);
                    // SAFETY: claim won — payload links exclusively ours.
                    unsafe { n.payload() }.each_link(&mut |l| {
                        // Strip a possible deletion mark: it carries no count.
                        let child =
                            wfrc_primitives::tagged::without_tag(l.swap_raw(ptr::null_mut()));
                        if !child.is_null() {
                            pending.get_or_insert_with(Vec::new).push(child);
                        }
                    });
                    // SAFETY: same exclusivity; each non-null weak link
                    // holds one weak unit on its target.
                    unsafe { n.payload() }.each_weak_link(&mut |wl| {
                        let child = wl.inner().swap_raw(ptr::null_mut());
                        if !child.is_null() {
                            // SAFETY: arena node; type-stable header.
                            unsafe {
                                (*child).faa_weak(-1);
                                if (*child).maybe_finalize() {
                                    self.free_node(child);
                                }
                            }
                        }
                    });
                    match claim {
                        Claim::Free => self.free_node(cur),
                        Claim::DeadWeak => {
                            // Drop the claim's guard unit; the last weak
                            // release finalizes the header.
                            n.faa_weak(-1);
                            if n.maybe_finalize() {
                                self.free_node(cur);
                            }
                        }
                        Claim::Busy => unreachable!("matched above"),
                    }
                }
            }
            match pending.as_mut().and_then(|p| p.pop()) {
                Some(next) => cur = next,
                None => break,
            }
        }
    }

    /// Treiber push of a claimed node onto the single free-list (or into
    /// this thread's magazine when the layer is enabled).
    fn free_node(&self, node: *mut Node<T>) {
        OpCounters::bump(&self.counters.free_calls);
        if self.magazine_push(node) {
            return;
        }
        let retries = self.push_chain(node, node);
        OpCounters::add(&self.counters.free_push_retries, retries);
        OpCounters::record_max(&self.counters.max_free_push_retries, retries);
    }

    /// Treiber push of an exclusively-owned, pre-linked chain
    /// (`first..=last`) onto the single head. Returns the retry count.
    fn push_chain(&self, first: *mut Node<T>, last: *mut Node<T>) -> u64 {
        self.domain.push_chain_raw(first, last)
    }

    /// Fires the injection hook for `site` if a plan is installed (resource-
    /// free sites only; see [`wfrc_core::fault`]).
    #[cfg(feature = "fault-injection")]
    #[inline]
    fn fault_hit(&self, site: wfrc_core::fault::FaultSite) {
        if let Some(p) = &self.domain.faults {
            p.hit(site, self.tid, &self.counters);
        }
    }

    /// Fires the injection hook with a completion obligation, like
    /// `wfrc_core`'s `Shared::fault_hit_or`: on an injected death,
    /// `complete` finishes the interrupted protocol step before the unwind
    /// resumes.
    #[cfg(feature = "fault-injection")]
    #[inline]
    fn fault_hit_or(&self, site: wfrc_core::fault::FaultSite, complete: impl FnOnce()) {
        if let Some(p) = &self.domain.faults {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.hit(site, self.tid, &self.counters)
            })) {
                Ok(()) => {}
                Err(payload) => {
                    complete();
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }

    /// Number of nodes currently parked in this thread's magazine.
    pub fn magazine_len(&self) -> usize {
        // SAFETY: this handle is the exclusive owner of `tid`'s slot.
        unsafe { self.domain.mag.len(self.tid) }
    }

    /// Magazine fast path of `alloc_raw`: pop locally, refilling from the
    /// single head in one batch (one SWAP) when empty. `None` falls through
    /// to the Treiber loop. Same node-state protocol as
    /// [`wfrc_core::magazine`]: parked nodes keep `mm_ref == 1`, popping
    /// applies `FAA(+1)` (1 → 2).
    fn magazine_pop(&self) -> Option<*mut Node<T>> {
        let mag = &self.domain.mag;
        if !mag.is_enabled() {
            return None;
        }
        // SAFETY: `tid` is this handle's registered thread id (exclusive).
        let node = match unsafe { mag.pop(self.tid) } {
            Some(node) => node,
            None => {
                self.magazine_refill();
                // SAFETY: same exclusivity.
                unsafe { mag.pop(self.tid) }?
            }
        };
        OpCounters::bump(&self.counters.magazine_hits);
        // SAFETY: arena node; headers are type-stable.
        unsafe { (*node).faa_ref(1) };
        Some(node)
    }

    /// Steals the whole free-list with one `SWAP(head, ⊥)`, keeps at most
    /// half a magazine, and hands the rest back (CAS ⊥ → rest, falling
    /// back to a Treiber chain-push if an allocator raced in).
    fn magazine_refill(&self) {
        // A death here holds nothing yet — the head has not been swapped.
        #[cfg(feature = "fault-injection")]
        self.fault_hit(wfrc_core::fault::FaultSite::MagazineRefill);
        let mag = &self.domain.mag;
        let target = (mag.cap() / 2).max(1);
        // Acquire: pairs with the Release pushes that built the chain.
        let chain = self
            .domain
            .head
            .swap_with(ptr::null_mut(), Ordering::Acquire);
        if chain.is_null() {
            return;
        }
        // Between the head SWAP and the magazine extend this thread owns
        // the whole chain: a death must hand it back or the pool shrinks.
        #[cfg(feature = "fault-injection")]
        self.fault_hit_or(wfrc_core::fault::FaultSite::StripeSwap, || {
            let mut tail = chain;
            loop {
                // SAFETY: node of the stolen chain — exclusively ours.
                let next = unsafe { (*tail).mm_next().load() };
                if next.is_null() {
                    break;
                }
                tail = next;
            }
            self.push_chain(chain, tail);
        });
        let mut kept = Vec::with_capacity(target);
        let mut p = chain;
        while !p.is_null() && kept.len() < target {
            kept.push(p);
            // SAFETY: node of the stolen chain — exclusively ours.
            p = unsafe { (*p).mm_next().load() };
        }
        let rest = p;
        // Release hand-back publishes the remainder chain's links.
        if !rest.is_null()
            && !self.domain.head.cas_with(
                ptr::null_mut(),
                rest,
                Ordering::Release,
                Ordering::Relaxed,
            )
        {
            let mut tail = rest;
            loop {
                // SAFETY: node of the stolen remainder.
                let next = unsafe { (*tail).mm_next().load() };
                if next.is_null() {
                    break;
                }
                tail = next;
            }
            let retries = self.push_chain(rest, tail);
            OpCounters::add(&self.counters.free_push_retries, retries);
            OpCounters::record_max(&self.counters.max_free_push_retries, retries);
        }
        // SAFETY: tid exclusivity; kept.len() <= cap / 2 fits.
        unsafe { mag.extend(self.tid, kept) };
        OpCounters::bump(&self.counters.magazine_refills);
    }

    /// Magazine fast path of `free_node`: push locally, draining the
    /// oldest half as one chain-push when full.
    fn magazine_push(&self, node: *mut Node<T>) -> bool {
        let mag = &self.domain.mag;
        if !mag.is_enabled() {
            return false;
        }
        // A death here owns the claimed `node` and nothing else; the
        // completion pushes it straight to the shared head (chain of one)
        // so the pool cannot silently deplete.
        #[cfg(feature = "fault-injection")]
        self.fault_hit_or(wfrc_core::fault::FaultSite::MagazineDrain, || {
            self.push_chain(node, node);
        });
        // SAFETY: `tid` is this handle's registered thread id (exclusive).
        if unsafe { mag.try_push(self.tid, node) } {
            return true;
        }
        let half = (mag.cap() / 2).max(1);
        // SAFETY: same exclusivity.
        let batch = unsafe { mag.take(self.tid, half) };
        self.drain_batch(batch);
        // SAFETY: same exclusivity; we just made room.
        let pushed = unsafe { mag.try_push(self.tid, node) };
        debug_assert!(pushed, "magazine still full after drain");
        pushed
    }

    /// Chains `batch` locally and pushes it with one Treiber CAS.
    fn drain_batch(&self, batch: Vec<*mut Node<T>>) {
        debug_assert!(!batch.is_empty());
        OpCounters::bump(&self.counters.magazine_drains);
        for w in batch.windows(2) {
            // SAFETY: claimed nodes exclusively owned by this drain.
            unsafe { (*w[0]).mm_next().store(w[1]) };
        }
        let retries = self.push_chain(batch[0], batch[batch.len() - 1]);
        OpCounters::add(&self.counters.free_push_retries, retries);
        OpCounters::record_max(&self.counters.max_free_push_retries, retries);
    }

    /// `FixRef(node, 2·refs)`.
    ///
    /// # Safety
    /// Caller must already own a reference on `node`.
    pub unsafe fn add_ref_raw(&self, node: *mut Node<T>, refs: usize) {
        debug_assert!(!node.is_null());
        // SAFETY: arena node.
        unsafe { (*node).faa_ref(2 * refs as isize) };
    }

    /// Link CAS. LFRC has no helping obligation — a plain CAS is the whole
    /// protocol. Count discipline is the caller's, exactly as in
    /// [`wfrc_core::ThreadHandle::cas_link_raw`].
    ///
    /// # Safety
    /// `old`/`new` must be null or nodes of this domain; the caller owns
    /// the reference transferred on `new`.
    pub unsafe fn cas_link_raw(
        &self,
        link: &Link<T>,
        old: *mut Node<T>,
        new: *mut Node<T>,
    ) -> bool {
        link.cas_raw(old, new)
    }

    /// Direct write of an **unpublished** link (previous value ⊥).
    ///
    /// # Safety
    /// Same contract as [`wfrc_core::ThreadHandle::store_link_raw`].
    pub unsafe fn store_link_raw(&self, link: &Link<T>, node: *mut Node<T>) {
        debug_assert!(link.is_null());
        link.store_raw(node);
    }

    /// Shared payload access.
    ///
    /// # Safety
    /// Caller must hold a reference on `node` for the borrow's duration.
    pub unsafe fn payload_raw(&self, node: *mut Node<T>) -> &T {
        // SAFETY: forwarded contract.
        unsafe { (*node).payload() }
    }

    /// Exclusive payload access (fresh unpublished node).
    ///
    /// # Safety
    /// Caller must own `node` exclusively.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn payload_mut_raw(&self, node: *mut Node<T>) -> &mut T {
        // SAFETY: forwarded contract.
        unsafe { (*node).payload_mut() }
    }

    // ------------------------------------------------------------------
    // Snapshot layer mirror (apples-to-apples with wfrc-core's §4f)
    // ------------------------------------------------------------------

    /// No-op pin guard mirroring [`wfrc_core::ThreadHandle::pin`]: LFRC
    /// has no epoch or pin bitmap, so the guard publishes nothing — it
    /// exists so the E4 `--snapshot` readers run the *same* guard + plain
    /// load structure over both schemes and measure only the protocol
    /// difference. LFRC's plain load is **unprotected** (that is the
    /// baseline's known unsafety window), which is why
    /// [`LfrcPinGuard::snapshot_raw`] stays `unsafe`.
    pub fn pin(&self) -> LfrcPinGuard<'_, 'd, T> {
        self.pin_raw();
        LfrcPinGuard { handle: self }
    }

    /// No-op pin entry (mirrors [`wfrc_core::ThreadHandle::pin_raw`]).
    pub fn pin_raw(&self) {}

    /// No-op pin exit (mirrors [`wfrc_core::ThreadHandle::unpin_raw`]).
    ///
    /// # Safety
    /// Trivially safe — present only for signature parity with the
    /// wait-free scheme.
    pub unsafe fn unpin_raw(&self) {}

    /// Plain (`SeqCst`) load of `link`, deletion mark stripped, counted as
    /// a snapshot deref — the baseline twin of
    /// [`wfrc_core::ThreadHandle::snapshot_raw`]. Carries no reference
    /// count **and no protection**: LFRC has no deferral machinery.
    ///
    /// # Safety
    /// The caller must otherwise guarantee the target cannot be reclaimed
    /// while the pointer is dereferenced (e.g. a standing reference held
    /// for the benchmark's duration).
    #[must_use = "the returned pointer is unprotected; the caller guarantees liveness"]
    pub unsafe fn snapshot_raw(&self, link: &Link<T>) -> *mut Node<T> {
        OpCounters::bump(&self.counters.snapshot_derefs);
        wfrc_primitives::tagged::without_tag(link.load_raw())
    }

    // ------------------------------------------------------------------
    // Weak layer mirror (apples-to-apples with wfrc-core's §4g)
    // ------------------------------------------------------------------

    /// Adds one weak reference to `node` — the raw twin of
    /// [`wfrc_core::ThreadHandle::downgrade`]. The caller becomes
    /// responsible for a matching [`LfrcHandle::release_weak_raw`].
    ///
    /// # Safety
    /// The caller must hold a strong reference on `node` (non-null, this
    /// domain) for the duration of the call.
    pub unsafe fn downgrade_raw(&self, node: *mut Node<T>) {
        debug_assert!(!node.is_null());
        OpCounters::bump(&self.counters.weak_downgrades);
        // SAFETY: arena node; caller's strong reference keeps it live.
        unsafe { (*node).faa_weak(1) };
    }

    /// Attempts to turn a weak reference into a strong one: on `true` the
    /// caller owns one new strong reference on `node` (the weak reference
    /// is untouched). The raw twin of `wfrc_core::Weak::upgrade`.
    ///
    /// # Safety
    /// The caller must hold a weak reference on `node` (it pins the header
    /// against finalize and recycling for the duration of the call).
    pub unsafe fn upgrade_raw(&self, node: *mut Node<T>) -> bool {
        debug_assert!(!node.is_null());
        OpCounters::bump(&self.counters.weak_upgrades);
        // Holds nothing yet — a death here loses only the attempt.
        #[cfg(feature = "fault-injection")]
        self.fault_hit(wfrc_core::fault::FaultSite::WeakUpgrade);
        // SAFETY: caller's weak reference keeps the header stable.
        if unsafe { (*node).try_upgrade() } {
            true
        } else {
            OpCounters::bump(&self.counters.upgrade_failed);
            false
        }
    }

    /// Drops one weak reference; the last one off a DEAD header frees the
    /// node.
    ///
    /// # Safety
    /// The caller must own an unreleased weak reference on `node`.
    pub unsafe fn release_weak_raw(&self, node: *mut Node<T>) {
        debug_assert!(!node.is_null());
        // SAFETY: arena node; the caller's weak unit is ours to drop.
        let n = unsafe { &*node };
        n.faa_weak(-1);
        if n.maybe_finalize() {
            self.free_node(node);
        }
    }

    /// Stores `new` into the weak link `w`, transferring one weak unit onto
    /// `new` and dropping the displaced target's — the raw twin of
    /// [`wfrc_core::ThreadHandle::store_weak`].
    ///
    /// # Safety
    /// `new` must be null or a node of this domain on which the caller
    /// holds a strong reference; `w` must only ever hold nodes of this
    /// domain.
    pub unsafe fn store_weak_raw(&self, w: &AtomicWeak<T>, new: *mut Node<T>) {
        if !new.is_null() {
            OpCounters::bump(&self.counters.weak_downgrades);
            // SAFETY: caller's strong reference keeps `new` live.
            unsafe { (*new).faa_weak(1) };
        }
        let old = w.inner().swap_raw(new);
        if !old.is_null() {
            // SAFETY: the link owned one weak unit on `old`.
            unsafe { self.release_weak_raw(old) };
        }
    }

    /// Reads the weak link `w` and upgrades the target in one step: returns
    /// a node the caller holds one **strong** reference on, or null if the
    /// link is empty or its target died. Runs the Valois optimistic
    /// deref (unbounded retries) against the inner link, then validates the
    /// claim bit — the baseline twin of
    /// [`wfrc_core::ThreadHandle::load_weak`].
    ///
    /// # Safety
    /// `w` must only ever hold nodes of this handle's domain.
    pub unsafe fn load_weak_raw(&self, w: &AtomicWeak<T>) -> *mut Node<T> {
        OpCounters::bump(&self.counters.weak_upgrades);
        // SAFETY: forwarded caller contract. The link's own weak unit keeps
        // the target's header unrecycled while it remains the target, so
        // the optimistic FAA lands on a stable header.
        let node = unsafe { self.deref_raw(w.inner()) };
        if node.is_null() {
            OpCounters::bump(&self.counters.upgrade_failed);
            return node;
        }
        // We now hold a (possibly speculative) +2 on the target. A death
        // here must release it or the node leaks.
        #[cfg(feature = "fault-injection")]
        self.fault_hit_or(wfrc_core::fault::FaultSite::WeakUpgrade, || {
            // SAFETY: releases the count taken above.
            unsafe { self.release_raw(node) };
        });
        // SAFETY: our +2 keeps the header pinned while we validate.
        if unsafe { (*node).is_claimed() } {
            // Target is DEAD (or back on the free-list): the speculative
            // count is not a live reference — undo it (this may inherit
            // the finalize, see `release_raw_body`'s Busy arm).
            OpCounters::bump(&self.counters.upgrade_failed);
            // SAFETY: releases the count taken above.
            unsafe { self.release_raw(node) };
            return ptr::null_mut();
        }
        node
    }

    // ------------------------------------------------------------------
    // Byte-class layer (mirrors `wfrc_core::ThreadHandle`'s)
    // ------------------------------------------------------------------

    /// Number of byte classes configured on this domain.
    pub fn class_count(&self) -> usize {
        self.domain.classes.len()
    }

    /// Allocates a block from the smallest class that fits `bytes` and
    /// copies `bytes` in — the LFRC twin of
    /// [`wfrc_core::ThreadHandle::alloc_bytes`] (lock-free: the class
    /// head's Treiber CAS can retry unboundedly).
    ///
    /// # Panics
    /// If no configured class has `block_size >= bytes.len()`.
    pub fn alloc_bytes(&self, bytes: &[u8]) -> Result<RawBytes, OutOfMemory> {
        let (idx, cls) = self
            .domain
            .classes
            .iter()
            .enumerate()
            .filter(|(_, cls)| cls.block_size() >= bytes.len())
            .min_by_key(|(_, cls)| cls.block_size())
            .unwrap_or_else(|| panic!("no configured byte class fits {} bytes", bytes.len()));
        let node = cls.alloc(self.tid, &self.counters, self.domain.backoff)?;
        let data = cls.data_ptr(node);
        // SAFETY: freshly popped block, exclusively ours; the class fits.
        unsafe { core::ptr::copy_nonoverlapping(bytes.as_ptr(), data, bytes.len()) };
        OpCounters::bump(&self.counters.class_allocs[idx]);
        Ok(RawBytes::from_raw_parts(idx, bytes.len(), node))
    }

    /// The bytes stored behind `token`.
    ///
    /// # Safety
    /// Same contract as [`wfrc_core::ThreadHandle::bytes`].
    pub unsafe fn bytes(&self, token: &RawBytes) -> &[u8] {
        let cls = &self.domain.classes[token.class_index()];
        let data = cls.data_ptr(token.node_ptr());
        // SAFETY: per contract the block is live and unaliased by writers.
        unsafe { core::slice::from_raw_parts(data, token.len()) }
    }

    /// Returns `token`'s block to its class free-list.
    ///
    /// # Safety
    /// Same contract as [`wfrc_core::ThreadHandle::free_bytes`].
    pub unsafe fn free_bytes(&self, token: RawBytes) {
        let idx = token.class_index();
        let cls = &self.domain.classes[idx];
        // SAFETY: forwarded contract.
        unsafe { cls.free(self.tid, &self.counters, token.node_ptr()) };
        OpCounters::bump(&self.counters.class_frees[idx]);
    }
}

impl<'d, T: RcObject> LfrcHandle<'d, T> {
    /// Drains this handle's magazines (node pool and byte classes) back
    /// to the shared free structures without dropping the handle — the
    /// baseline twin of [`wfrc_core::ThreadHandle::flush_magazines`],
    /// used by the lease pool's `flush_on_release` policy.
    pub fn flush_magazines(&self) {
        // SAFETY: still the exclusive owner of `tid`'s slot.
        let batch = unsafe { self.domain.mag.take(self.tid, usize::MAX) };
        if !batch.is_empty() {
            self.drain_batch(batch);
        }
        for cls in self.domain.classes.iter() {
            cls.drain_magazine(self.tid, &self.counters);
        }
    }

    /// Deliberately orphans this handle for
    /// [`LfrcDomain::adopt_orphans`], exactly like
    /// [`wfrc_core::ThreadHandle::abandon`].
    pub fn abandon(self) {
        // Release publishes this thread's magazine state to the adopter's
        // Acquire claim.
        let was = self.domain.slots[self.tid].swap_with(SLOT_ORPHANED, Ordering::Release);
        debug_assert_eq!(was, SLOT_TAKEN);
        core::mem::forget(self);
    }
}

/// The baseline's no-op pin guard (created by [`LfrcHandle::pin`]): holds
/// nothing and publishes nothing — see [`LfrcHandle::pin`] for why it
/// exists. `#[must_use]` matches the wait-free guard so generic bench code
/// treats both identically.
#[must_use = "dropping the guard ends the (no-op) pin session"]
pub struct LfrcPinGuard<'h, 'd, T: RcObject> {
    handle: &'h LfrcHandle<'d, T>,
}

impl<'h, 'd, T: RcObject> LfrcPinGuard<'h, 'd, T> {
    /// The handle this guard belongs to.
    pub fn handle(&self) -> &'h LfrcHandle<'d, T> {
        self.handle
    }

    /// Plain-load dereference under the (no-op) guard — forwards to
    /// [`LfrcHandle::snapshot_raw`].
    ///
    /// # Safety
    /// Same contract as [`LfrcHandle::snapshot_raw`]: the guard provides
    /// **no** protection, so the caller must otherwise keep the target
    /// alive.
    #[must_use = "the returned pointer is unprotected; the caller guarantees liveness"]
    pub unsafe fn snapshot_raw(&self, link: &Link<T>) -> *mut Node<T> {
        // SAFETY: forwarded caller contract.
        unsafe { self.handle.snapshot_raw(link) }
    }
}

impl<T: RcObject> Drop for LfrcPinGuard<'_, '_, T> {
    fn drop(&mut self) {
        // SAFETY: trivially safe no-op (signature parity only).
        unsafe { self.handle.unpin_raw() };
    }
}

impl<T: RcObject> Drop for LfrcHandle<'_, T> {
    fn drop(&mut self) {
        // Fold the snapshot-path counters into the domain-lifetime stats
        // on both exit paths, mirroring `wfrc_core::ThreadHandle`.
        self.domain
            .snapshot_derefs
            .fetch_add(self.counters.snapshot_derefs.get(), Ordering::Relaxed);
        self.domain
            .upgrade_slow
            .fetch_add(self.counters.upgrade_slow.get(), Ordering::Relaxed);
        self.domain
            .weak_upgrades
            .fetch_add(self.counters.weak_upgrades.get(), Ordering::Relaxed);
        self.domain
            .upgrade_failed
            .fetch_add(self.counters.upgrade_failed.get(), Ordering::Relaxed);
        // A panicking thread leaves recovery to `adopt_orphans`, same as
        // `wfrc_core::ThreadHandle`.
        if std::thread::panicking() {
            // Release: publish the dying thread's state to the adopter.
            let was = self.domain.slots[self.tid].swap_with(SLOT_ORPHANED, Ordering::Release);
            debug_assert_eq!(was, SLOT_TAKEN);
            return;
        }
        // Return magazine-parked nodes (node pool and every byte class)
        // strictly before the thread id becomes claimable, same as
        // `wfrc_core::ThreadHandle`.
        self.flush_magazines();
        // Release: pairs with the Acquire claim of the next `register`.
        let was = self.domain.slots[self.tid].swap_with(SLOT_FREE, Ordering::Release);
        debug_assert_eq!(was, SLOT_TAKEN);
    }
}

/// The lease pool runs over the baseline unmodified: registration,
/// abandonment, and adoption have the same shape, so the E12 server bench
/// compares the schemes behind one [`wfrc_core::lease::LeasePool`] API.
impl<T: RcObject> wfrc_core::lease::LeaseRegistry for LfrcDomain<T> {
    type Handle<'d>
        = LfrcHandle<'d, T>
    where
        Self: 'd;

    fn try_register_handle(&self) -> Result<Self::Handle<'_>, wfrc_core::domain::RegistryFull> {
        self.try_register()
    }

    fn abandon_handle<'d>(&'d self, handle: Self::Handle<'d>) {
        handle.abandon();
    }

    fn adopt_all(&self) -> wfrc_core::AdoptReport {
        self.adopt_orphans()
    }

    fn flush_handle<'d>(&'d self, handle: &Self::Handle<'d>) {
        handle.flush_magazines();
    }

    fn handle_tid(handle: &Self::Handle<'_>) -> usize {
        handle.tid()
    }

    #[cfg(feature = "fault-injection")]
    fn lease_fault<'d>(&'d self, handle: &Self::Handle<'d>) {
        handle.fault_hit(wfrc_core::fault::FaultSite::LeaseExpire);
    }
}

/// The LFRC registry under [`wfrc_core::sentinel`] supervision — the
/// apples-to-apples mirror of the WFRC domain's impl, so the same
/// `Sentinel` (and the same E10/E12 harness code) drives recovery over
/// both schemes. LFRC has no operation epochs, announcement bits, or
/// retire claims, so the only obligation a slot can hold is being
/// `ORPHANED`, and the slot word itself is the progress fingerprint.
impl<T: RcObject> wfrc_core::sentinel::Supervised for LfrcDomain<T> {
    fn watch_slots(&self) -> usize {
        self.slots.len()
    }

    fn obligated(&self, slot: usize) -> bool {
        // SeqCst mirrors the WFRC impl: never lag a completed orphaning.
        self.slots[slot].load_with(Ordering::SeqCst) == SLOT_ORPHANED
    }

    fn fingerprint(&self, slot: usize) -> u64 {
        self.slots[slot].load_with(Ordering::SeqCst) as u64
    }

    fn help(&self, slot: usize) -> bool {
        self.slots[slot].load_with(Ordering::SeqCst) == SLOT_ORPHANED
            && self.adopt_orphans().orphans_adopted > 0
    }

    fn declare_dead(&self, slot: usize) -> bool {
        // Adoption only ever touches ORPHANED slots — same conservatism as
        // the WFRC domain: a live registration is never seized.
        self.help(slot)
    }
}

/// Object-safe operations of one LFRC byte class — the baseline twin of
/// the erased trait in `wfrc_core::class`, minus everything the scheme
/// lacks (epochs, announcements, gifts, concurrent reclamation).
trait LfrcClassOps: Send + Sync {
    /// Block size in bytes.
    fn block_size(&self) -> usize;
    /// Current block capacity of the class arena.
    fn capacity(&self) -> usize;
    /// Number of live (non-retired) segments backing the class.
    fn segment_count(&self) -> usize;
    /// Allocates one block (stale contents); lock-free Treiber pop.
    fn alloc(&self, tid: usize, c: &OpCounters, backoff: bool) -> Result<*mut u8, OutOfMemory>;
    /// Address of the block's payload bytes.
    fn data_ptr(&self, node: *mut u8) -> *mut u8;
    /// Frees a block previously returned by `alloc`.
    ///
    /// # Safety
    /// `node` must be an unfreed allocation of **this** class; `tid` must
    /// be the caller's registered slot.
    unsafe fn free(&self, tid: usize, c: &OpCounters, node: *mut u8);
    /// Drains slot `tid`'s class magazine back to the single head.
    fn drain_magazine(&self, tid: usize, c: &OpCounters);
    /// Orphan recovery: returns the corpse's magazine blocks to the head.
    fn adopt_slot(&self, tid: usize) -> usize;
    /// Stop-the-world tail-segment retire (`&mut`: quiescence by borrow).
    fn reclaim_quiescent(&mut self, threads: usize) -> bool;
    /// Quiescent audit of the class.
    fn leak(&self) -> ClassLeak;
}

/// One LFRC byte class: a page-carved arena of `RawBuf<N>` blocks behind a
/// single Treiber head plus optional per-thread magazines — structurally
/// the same pool as `wfrc_core::class`'s, allocated through the baseline's
/// contended single-head protocol instead of the wait-free stripes.
struct LfrcByteClass<const N: usize> {
    arena: Arena<RawBuf<N>>,
    head: HeadCell<RawBuf<N>>,
    mag: Magazines<RawBuf<N>>,
}

impl<const N: usize> LfrcByteClass<N> {
    fn new(cfg: &ClassConfig, n: usize) -> Self {
        assert!(cfg.capacity > 0, "class capacity must be positive");
        let capacity = page_carved::<RawBuf<N>>(cfg.capacity);
        let growth = match cfg.growth {
            Growth::Disabled => Growth::Disabled,
            Growth::Enabled {
                factor,
                max_capacity,
            } => Growth::Enabled {
                factor,
                max_capacity: page_carved::<RawBuf<N>>(max_capacity.max(capacity)),
            },
        };
        let arena = Arena::with_growth_carved(capacity, growth, |_| RawBuf::default());
        for i in 0..capacity {
            let next = if i + 1 < capacity {
                arena.node_ptr(i + 1)
            } else {
                ptr::null_mut()
            };
            arena.node(i).mm_next().store(next);
        }
        let head = new_head::<RawBuf<N>>();
        h_store(&head, arena.node_ptr(0));
        Self {
            arena,
            head,
            mag: Magazines::new(n, clamped_cap(cfg.magazine, capacity, n)),
        }
    }

    /// Treiber push of an exclusively-owned, pre-linked chain.
    fn push_chain(&self, first: *mut Node<RawBuf<N>>, last: *mut Node<RawBuf<N>>) {
        let mut backoff = Backoff::new();
        loop {
            // Relaxed head load / Release publish: same Treiber orderings
            // as the node pool's `push_chain_raw`.
            let head = self.head.load_with(Ordering::Relaxed);
            // SAFETY: `last` is exclusively ours until the CAS publishes it.
            unsafe { (*last).mm_next().store(head) };
            if self
                .head
                .cas_with(head, first, Ordering::Release, Ordering::Relaxed)
            {
                return;
            }
            backoff.snooze();
        }
    }

    /// One growth step on the class arena (same contract as the node
    /// pool's `try_grow`).
    fn try_grow(&self, c: &OpCounters) -> bool {
        match self.arena.try_grow() {
            GrowOutcome::Grew { nodes, revived } => {
                OpCounters::bump(&c.segments_grown);
                if revived {
                    OpCounters::bump(&c.segments_revived);
                }
                OpCounters::add(&c.nodes_seeded, nodes.len() as u64);
                let first = &nodes[0] as *const Node<RawBuf<N>> as *mut Node<RawBuf<N>>;
                for w in nodes.windows(2) {
                    w[0].mm_next()
                        .store(&w[1] as *const Node<RawBuf<N>> as *mut Node<RawBuf<N>>);
                }
                let last =
                    &nodes[nodes.len() - 1] as *const Node<RawBuf<N>> as *mut Node<RawBuf<N>>;
                self.push_chain(first, last);
                true
            }
            GrowOutcome::Lost => true,
            GrowOutcome::AtCapacity => false,
        }
    }
}

impl<const N: usize> LfrcClassOps for LfrcByteClass<N> {
    fn block_size(&self) -> usize {
        N
    }

    fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    fn segment_count(&self) -> usize {
        self.arena.segment_count()
    }

    fn alloc(&self, tid: usize, c: &OpCounters, backoff_on: bool) -> Result<*mut u8, OutOfMemory> {
        if self.mag.is_enabled() {
            // SAFETY: `tid` is the caller's exclusively-owned slot.
            if let Some(node) = unsafe { self.mag.pop(tid) } {
                OpCounters::bump(&c.magazine_hits);
                // SAFETY: arena node; parked blocks hold mm_ref == 1.
                unsafe { (*node).faa_ref(1) };
                return Ok(node as *mut u8);
            }
        }
        let mut backoff = Backoff::new();
        loop {
            // Acquire: pairs with the Release push that published `node`.
            let node = self.head.load_with(Ordering::Acquire);
            if node.is_null() {
                OpCounters::bump(&c.alloc_slow_path);
                if self.try_grow(c) {
                    continue;
                }
                return Err(OutOfMemory);
            }
            // SAFETY: arena node; headers are type-stable.
            let nref = unsafe { &*node };
            nref.faa_ref(2); // pin against reinsertion
            let next = nref.mm_next().load();
            if self
                .head
                .cas_with(node, next, Ordering::AcqRel, Ordering::Relaxed)
            {
                nref.faa_ref(-1); // claimed free block (3) -> one live ref (2)
                return Ok(node as *mut u8);
            }
            OpCounters::bump(&c.alloc_cas_failures);
            // Undo the pin; if that claims the block, hand it back.
            nref.faa_ref(-2);
            if nref.try_claim() {
                self.push_chain(node, node);
            }
            if backoff_on {
                backoff.snooze();
            }
        }
    }

    fn data_ptr(&self, node: *mut u8) -> *mut u8 {
        let node = node as *mut Node<RawBuf<N>>;
        // SAFETY: per the alloc/free contracts `node` is a block of this
        // class; `payload_ptr` forms no payload reference (RawBuf is
        // repr(transparent), so the payload address is the data address).
        unsafe { (*node).payload_ptr() as *mut u8 }
    }

    unsafe fn free(&self, tid: usize, c: &OpCounters, node: *mut u8) {
        OpCounters::bump(&c.releases);
        let node = node as *mut Node<RawBuf<N>>;
        // SAFETY: arena node, caller owns one reference.
        let n = unsafe { &*node };
        n.faa_ref(-2);
        if n.try_claim() {
            OpCounters::bump(&c.reclaims);
            OpCounters::bump(&c.free_calls);
            if self.mag.is_enabled() {
                // SAFETY: `tid` exclusivity (caller contract).
                if unsafe { self.mag.try_push(tid, node) } {
                    return;
                }
                let half = (self.mag.cap() / 2).max(1);
                // SAFETY: same exclusivity.
                let batch = unsafe { self.mag.take(tid, half) };
                if !batch.is_empty() {
                    OpCounters::bump(&c.magazine_drains);
                    for w in batch.windows(2) {
                        // SAFETY: claimed blocks owned by this drain.
                        unsafe { (*w[0]).mm_next().store(w[1]) };
                    }
                    self.push_chain(batch[0], batch[batch.len() - 1]);
                }
                // SAFETY: same exclusivity; we just made room.
                if unsafe { self.mag.try_push(tid, node) } {
                    return;
                }
            }
            self.push_chain(node, node);
        }
    }

    fn drain_magazine(&self, tid: usize, c: &OpCounters) {
        // SAFETY: `tid` exclusivity (caller contract).
        let batch = unsafe { self.mag.take(tid, usize::MAX) };
        if !batch.is_empty() {
            OpCounters::bump(&c.magazine_drains);
            for w in batch.windows(2) {
                // SAFETY: claimed blocks owned by this drain.
                unsafe { (*w[0]).mm_next().store(w[1]) };
            }
            self.push_chain(batch[0], batch[batch.len() - 1]);
        }
    }

    fn adopt_slot(&self, tid: usize) -> usize {
        // SAFETY: the adopter CAS-claimed the corpse's slot exclusively.
        let batch = unsafe { self.mag.take(tid, usize::MAX) };
        let recovered = batch.len();
        if !batch.is_empty() {
            for w in batch.windows(2) {
                // SAFETY: claimed blocks owned by this drain.
                unsafe { (*w[0]).mm_next().store(w[1]) };
            }
            self.push_chain(batch[0], batch[batch.len() - 1]);
        }
        recovered
    }

    fn reclaim_quiescent(&mut self, threads: usize) -> bool {
        // The same private sweep as `LfrcDomain::reclaim_quiescent`,
        // applied to the class arena/head/magazines.
        let s = self.arena.segment_count();
        if s < 2 {
            return false;
        }
        let tail = s - 1;
        if let (Some(start), Some(len), Some(have)) = (
            self.arena.seg_start(tail),
            self.arena.seg_len(tail),
            self.arena.seg_free_count(tail),
        ) {
            if have < len {
                self.arena
                    .note_seeded(self.arena.node_ptr(start), len - have);
            }
        }
        let Some(slot) = self.arena.try_begin_tail_retire() else {
            return false;
        };
        let len = self.arena.seg_len(slot).unwrap_or(0);
        for tid in 0..threads {
            // SAFETY: exclusive access to the whole class (`&mut self`).
            let batch = unsafe { self.mag.take(tid, usize::MAX) };
            if !batch.is_empty() {
                for w in batch.windows(2) {
                    // SAFETY: privately owned chain.
                    unsafe { (*w[0]).mm_next().store(w[1]) };
                }
                self.push_chain(batch[0], batch[batch.len() - 1]);
            }
        }
        let mut p = self.head.swap_with(ptr::null_mut(), Ordering::Acquire);
        let mut candidates: Vec<*mut Node<RawBuf<N>>> = Vec::with_capacity(len);
        let mut keep: Vec<*mut Node<RawBuf<N>>> = Vec::new();
        while !p.is_null() {
            // SAFETY: detached chain is privately owned.
            let next = unsafe { (*p).mm_next().load() };
            if self.arena.seg_contains(slot, p) {
                candidates.push(p);
            } else {
                keep.push(p);
            }
            p = next;
        }
        let complete = candidates.len() == len
            // SAFETY: candidate blocks are privately held; headers stable.
            && candidates.iter().all(|&n| unsafe { (*n).load_ref() } == 1)
            && self.arena.finish_retire(slot);
        if !complete {
            keep.append(&mut candidates);
            self.arena.abort_retire(slot);
        }
        if !keep.is_empty() {
            for w in keep.windows(2) {
                // SAFETY: privately owned chain.
                unsafe { (*w[0]).mm_next().store(w[1]) };
            }
            self.push_chain(keep[0], keep[keep.len() - 1]);
        }
        complete
    }

    fn leak(&self) -> ClassLeak {
        let parked = self.mag.parked();
        let mut report = ClassLeak {
            size: N,
            capacity: self.arena.capacity(),
            segments: self.arena.segment_count(),
            segments_retired: self.arena.segments_retired(),
            ..ClassLeak::default()
        };
        for node in self.arena.iter() {
            let r = node.load_ref();
            let ptr = node as *const _ as usize;
            if parked.contains(&ptr) {
                if r == 1 {
                    report.magazine_nodes += 1;
                } else {
                    report.corrupt_nodes += 1;
                }
            } else if r == 1 {
                report.free_nodes += 1;
            } else if r % 2 == 0 && r >= 2 {
                report.live_nodes += 1;
            } else {
                report.corrupt_nodes += 1;
            }
        }
        report
    }
}

/// Monomorphization dispatch, mirroring `wfrc_core::class`'s: size →
/// `LfrcByteClass<N>` behind the object-safe trait.
fn build_lfrc_class(cfg: &ClassConfig, n: usize) -> Box<dyn LfrcClassOps> {
    match cfg.size {
        64 => Box::new(LfrcByteClass::<64>::new(cfg, n)),
        128 => Box::new(LfrcByteClass::<128>::new(cfg, n)),
        256 => Box::new(LfrcByteClass::<256>::new(cfg, n)),
        512 => Box::new(LfrcByteClass::<512>::new(cfg, n)),
        1024 => Box::new(LfrcByteClass::<1024>::new(cfg, n)),
        2048 => Box::new(LfrcByteClass::<2048>::new(cfg, n)),
        4096 => Box::new(LfrcByteClass::<4096>::new(cfg, n)),
        other => panic!(
            "unsupported class size {other} (supported: {:?})",
            wfrc_core::CLASS_SIZES
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_roundtrip() {
        let d = LfrcDomain::<u64>::new(1, 4);
        let h = d.register().unwrap();
        let n = h.alloc_raw().unwrap();
        // SAFETY: fresh node, we own it.
        unsafe {
            *h.payload_mut_raw(n) = 7;
            assert_eq!(*h.payload_raw(n), 7);
            assert_eq!((*n).ref_count(), 1);
            h.release_raw(n);
        }
        assert!(d.leak_check().is_clean());
    }

    #[test]
    fn alloc_exhausts_then_recovers() {
        let d = LfrcDomain::<u64>::new(1, 3);
        let h = d.register().unwrap();
        let nodes: Vec<_> = (0..3).map(|_| h.alloc_raw().unwrap()).collect();
        assert_eq!(h.alloc_raw(), Err(OutOfMemory));
        // SAFETY: we own all three references.
        unsafe {
            for n in nodes {
                h.release_raw(n);
            }
        }
        assert!(h.alloc_raw().is_ok());
    }

    #[test]
    fn deref_increments_and_recheck_passes_uncontended() {
        let d = LfrcDomain::<u64>::new(1, 4);
        let h = d.register().unwrap();
        let n = h.alloc_raw().unwrap();
        let link = Link::null();
        // SAFETY: transfer our reference into the link, then re-acquire.
        unsafe {
            h.store_link_raw(&link, n);
            let p = h.deref_raw(&link);
            assert_eq!(p, n);
            assert_eq!((*n).ref_count(), 2);
            h.release_raw(p);
            // Clear the link, releasing its count.
            assert!(h.cas_link_raw(&link, n, ptr::null_mut()));
            h.release_raw(n);
        }
        assert!(d.leak_check().is_clean());
        assert_eq!(h.counters().snapshot().max_deref_retries, 0);
    }

    #[test]
    fn release_drains_children() {
        struct Cell {
            next: Link<Cell>,
        }
        impl RcObject for Cell {
            fn each_link(&self, f: &mut dyn FnMut(&Link<Self>)) {
                f(&self.next);
            }
        }
        impl Default for Cell {
            fn default() -> Self {
                Cell { next: Link::null() }
            }
        }
        let d = LfrcDomain::<Cell>::new(1, 100);
        let h = d.register().unwrap();
        // SAFETY: standard raw-chain construction; counts transferred.
        unsafe {
            let mut head = h.alloc_raw().unwrap();
            for _ in 1..100 {
                let prev = h.alloc_raw().unwrap();
                h.store_link_raw(&h.payload_raw(prev).next, head);
                head = prev;
            }
            h.release_raw(head);
        }
        assert!(d.leak_check().is_clean());
    }

    #[test]
    fn weak_refs_upgrade_then_die_then_finalize() {
        let d = LfrcDomain::<u64>::new(1, 4);
        let h = d.register().unwrap();
        let n = h.alloc_raw().unwrap();
        // SAFETY: standard raw count discipline throughout.
        unsafe {
            h.downgrade_raw(n);
            assert!(h.upgrade_raw(n)); // strong 1 -> 2
            h.release_raw(n); // 2 -> 1
            h.release_raw(n); // 1 -> 0: DEAD-but-weak, not freed
            assert!((*n).is_dead());
            assert!(!h.upgrade_raw(n));
            let mid = d.leak_check();
            assert_eq!(mid.weak_nodes, 1);
            assert_eq!(mid.weak_count, 1);
            assert!(!mid.is_clean());
            h.release_weak_raw(n); // last weak unit finalizes + frees
        }
        let s = h.counters().snapshot();
        assert_eq!(s.weak_downgrades, 1);
        assert_eq!(s.weak_upgrades, 2);
        assert_eq!(s.upgrade_failed, 1);
        drop(h);
        let r = d.leak_check();
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.weak_upgrades, 2);
        assert_eq!(r.upgrade_failed, 1);
    }

    #[test]
    fn weak_links_load_store_and_strip_on_release() {
        #[derive(Default)]
        struct P {
            w: AtomicWeak<P>,
        }
        impl RcObject for P {
            fn each_link(&self, _f: &mut dyn FnMut(&Link<Self>)) {}
            fn each_weak_link(&self, f: &mut dyn FnMut(&AtomicWeak<Self>)) {
                f(&self.w);
            }
        }
        let d = LfrcDomain::<P>::new(1, 4);
        let h = d.register().unwrap();
        let a = h.alloc_raw().unwrap();
        let b = h.alloc_raw().unwrap();
        // SAFETY: standard raw count discipline throughout.
        unsafe {
            h.store_weak_raw(&h.payload_raw(a).w, b);
            let got = h.load_weak_raw(&h.payload_raw(a).w);
            assert_eq!(got, b);
            assert_eq!((*b).ref_count(), 2);
            h.release_raw(got);
            // Dropping b's last strong ref leaves it DEAD (the link's weak
            // unit pins the header) — and a load must now fail clean.
            h.release_raw(b);
            assert!((*b).is_dead());
            assert!(h.load_weak_raw(&h.payload_raw(a).w).is_null());
            // Releasing a strips its weak link, finalizing b.
            h.release_raw(a);
        }
        drop(h);
        assert!(d.leak_check().is_clean());
    }

    #[test]
    fn magazine_roundtrip_hits_and_drains_on_drop() {
        let mut d = LfrcDomain::<u64>::new(1, 64);
        d.set_magazine(8);
        assert_eq!(d.magazine_cap(), 8);
        let h = d.register().unwrap();
        for _ in 0..100 {
            let n = h.alloc_raw().unwrap();
            // SAFETY: we own the reference.
            unsafe { h.release_raw(n) };
        }
        let s = h.counters().snapshot();
        assert!(s.magazine_hits > 0, "no magazine hits: {s:?}");
        assert!(h.magazine_len() > 0);
        let mid = d.leak_check();
        assert!(mid.is_clean(), "{mid:?}");
        assert!(mid.magazine_nodes > 0);
        drop(h);
        let report = d.leak_check();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.magazine_nodes, 0);
        assert_eq!(report.free_nodes, 64);
    }

    #[test]
    fn quiescent_reclaim_oscillates_capacity() {
        let mut d = LfrcDomain::<u64>::with_growth(
            2,
            8,
            Growth::Enabled {
                factor: 2,
                max_capacity: 64,
            },
        );
        for _ in 0..5 {
            {
                let h = d.register().unwrap();
                let nodes: Vec<_> = (0..20).map(|_| h.alloc_raw().unwrap()).collect();
                assert!(d.segment_count() > 1);
                // SAFETY: we own every reference.
                unsafe {
                    for n in nodes {
                        h.release_raw(n);
                    }
                }
            }
            while d.reclaim_quiescent() {}
            assert_eq!(d.segment_count(), 1, "trailing segments not retired");
            assert_eq!(d.capacity(), 8);
            let r = d.leak_check();
            assert!(r.is_clean(), "{r:?}");
            assert_eq!(r.free_nodes, 8);
        }
        assert!(d.segments_retired() >= 5);
        assert!(d.segments_revived() >= 4);
    }

    #[test]
    fn quiescent_reclaim_aborts_on_live_node() {
        let mut d = LfrcDomain::<u64>::with_growth(
            1,
            4,
            Growth::Enabled {
                factor: 2,
                max_capacity: 32,
            },
        );
        let held;
        {
            let h = d.register().unwrap();
            let nodes: Vec<_> = (0..8).map(|_| h.alloc_raw().unwrap()).collect();
            // SAFETY: we own every reference; keep the last-allocated one
            // (it lives in the grown tail segment).
            unsafe {
                for &n in &nodes[..7] {
                    h.release_raw(n);
                }
            }
            held = nodes[7];
        }
        assert!(d.segment_count() > 1);
        assert!(!d.reclaim_quiescent(), "retired a segment with a live node");
        assert!(d.segment_count() > 1);
        {
            let h = d.register().unwrap();
            // SAFETY: the held reference survived the failed reclaim.
            unsafe { h.release_raw(held) };
        }
        while d.reclaim_quiescent() {}
        assert_eq!(d.segment_count(), 1);
        assert!(d.leak_check().is_clean());
    }

    #[test]
    fn byte_class_roundtrip_and_audit() {
        let mut d = LfrcDomain::<u64>::new(1, 4);
        d.set_classes(vec![ClassConfig::new(64, 8), ClassConfig::new(256, 8)]);
        assert_eq!(d.class_count(), 2);
        assert_eq!(d.class_block_size(1), 256);
        let h = d.register().unwrap();
        let small = h.alloc_bytes(b"tiny").unwrap();
        assert_eq!(small.class_index(), 0);
        let big = h.alloc_bytes(&[9u8; 200]).unwrap();
        assert_eq!(big.class_index(), 1);
        let mid = d.leak_check();
        assert_eq!(mid.classes.len(), 2);
        assert_eq!(mid.classes[0].live_nodes, 1);
        assert_eq!(mid.classes[1].live_nodes, 1);
        assert!(!mid.is_clean());
        // SAFETY: live tokens, no concurrent writers.
        unsafe {
            assert_eq!(h.bytes(&small), b"tiny");
            assert_eq!(h.bytes(&big), &[9u8; 200][..]);
            h.free_bytes(small);
            h.free_bytes(big);
        }
        let snap = h.counters().snapshot();
        assert_eq!(snap.class_allocs[0], 1);
        assert_eq!(snap.class_frees[1], 1);
        drop(h);
        assert!(d.leak_check().is_clean(), "{}", d.leak_check());
    }

    #[test]
    fn byte_class_grows_and_reclaims_quiescently() {
        let mut d = LfrcDomain::<u64>::new(2, 4);
        d.set_classes(vec![ClassConfig::new(64, 8).with_growth(Growth::Enabled {
            factor: 2,
            max_capacity: 1024,
        })]);
        let base = d.class_capacity(0);
        {
            let h = d.register().unwrap();
            let tokens: Vec<_> = (0..base + 10)
                .map(|_| h.alloc_bytes(&[1u8; 64]).unwrap())
                .collect();
            assert!(d.class_capacity(0) > base, "class arena did not grow");
            // SAFETY: our own live tokens.
            unsafe {
                for t in tokens {
                    h.free_bytes(t);
                }
            }
        }
        while d.reclaim_class_quiescent(0) {}
        assert_eq!(d.class_capacity(0), base, "class capacity did not shrink");
        assert!(d.leak_check().is_clean());
    }

    #[test]
    fn class_magazines_survive_orphan_adoption() {
        let mut d = LfrcDomain::<u64>::new(1, 4);
        d.set_classes(vec![ClassConfig::new(128, 8).with_magazine(4)]);
        let h = d.register().unwrap();
        let t = h.alloc_bytes(&[2u8; 100]).unwrap();
        // SAFETY: our own live token; parks in the class magazine.
        unsafe { h.free_bytes(t) };
        h.abandon();
        let report = d.adopt_orphans();
        assert_eq!(report.orphans_adopted, 1);
        assert_eq!(report.class_nodes_recovered, 1);
        let audit = d.leak_check();
        assert!(audit.is_clean(), "{audit}");
        assert_eq!(audit.classes[0].magazine_nodes, 0);
    }

    #[test]
    fn concurrent_alloc_free_conserves_nodes() {
        use std::sync::Arc;
        let d = Arc::new(LfrcDomain::<u64>::new(4, 64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    let h = d.register().unwrap();
                    for _ in 0..2_000 {
                        let n = h.alloc_raw().unwrap();
                        // SAFETY: we own the reference.
                        unsafe { h.release_raw(n) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(d.leak_check().is_clean());
    }
}
