//! Baseline memory-reclamation schemes for the reproduction.
//!
//! The paper's §5 evaluation compares its wait-free scheme against "the
//! default lock-free memory management scheme" of the NOBLE library — the
//! Valois / Michael–Scott corrected lock-free reference counting — and its
//! introduction contrasts reference counting against the fixed-reference
//! schemes used in practice. This crate implements all three comparators
//! from their original papers:
//!
//! * [`lfrc`] — **lock-free reference counting** (Valois 1995; Michael &
//!   Scott 1995 correction). Same node representation, same even/odd
//!   `mm_ref` convention as `wfrc-core`, but dereferencing retries
//!   unboundedly and the free-list is a single CAS-contended Treiber list.
//!   This is the E1/E4/E5 baseline.
//! * [`hazard`] — **hazard pointers** (Michael, PODC 2002 / TPDS 2004): a
//!   fixed number of per-thread protected pointers, amortized scan-and-free.
//!   Lock-free dereference, wait-free reclamation, but — as the paper's
//!   introduction notes — "only … a fixed number of references from process
//!   owned variables" can be protected, so it cannot express structures
//!   that hold arbitrary references from within the structure itself.
//! * [`epoch`] — **epoch-based reclamation** (Fraser-style three-epoch
//!   scheme, what today's OSS — crossbeam — ships): cheap pinned reads,
//!   but a single stalled reader halts reclamation globally, which is why
//!   it was never a candidate for the paper's real-time setting.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod epoch;
pub mod hazard;
pub mod lfrc;

pub use epoch::{EbrDomain, EbrGuard, EbrHandle};
pub use hazard::{HpDomain, HpHandle};
pub use lfrc::{LfrcDomain, LfrcHandle, LfrcPinGuard};
