//! Epoch-based reclamation (Fraser's three-epoch scheme; what crossbeam
//! ships today).
//!
//! Readers *pin* the current global epoch before touching shared nodes and
//! unpin afterwards; writers retire removed nodes into the bag of the epoch
//! they observed. The global epoch may advance from `e` to `e+1` only when
//! every pinned thread has observed `e`; at that point nodes retired in
//! epoch `e-1` can no longer be reachable by anyone and are freed. Three
//! bags per thread suffice because at most two epochs can have live
//! references at once.
//!
//! Included because the reproduction's novelty note is exactly that OSS
//! uses hazard pointers/epochs rather than wait-free reference counting:
//! EBR has the cheapest reads of all four schemes (one store + fence to
//! pin), but a single stalled pinned thread **stops reclamation globally**
//! — the anti-real-time behaviour the paper's refcounting avoids, and
//! measurable here (see `stalled_reader_blocks_reclamation`).

use core::cell::{Cell, RefCell};
use core::marker::PhantomData;
use core::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wfrc_primitives::CachePadded;

/// A participant's epoch word: bit 0 = pinned flag, upper bits = the epoch
/// observed at pin time.
const PINNED: usize = 1;

/// Retire this many nodes between advance attempts.
const ADVANCE_EVERY: usize = 64;

/// An epoch-based reclamation domain for heap nodes of type `T`.
pub struct EbrDomain<T> {
    global: CachePadded<AtomicUsize>,
    /// Per-thread epoch words (pinned flag + observed epoch).
    locals: Box<[CachePadded<AtomicUsize>]>,
    /// Registration flags.
    slots: Box<[CachePadded<AtomicUsize>]>,
    /// Bags orphaned by unregistered handles; freed on domain drop.
    orphans: Mutex<Vec<*mut T>>,
}

// SAFETY: pointers in orphan bags are heap nodes managed by the protocol;
// T: Send lets any thread drop them.
unsafe impl<T: Send> Sync for EbrDomain<T> {}
unsafe impl<T: Send> Send for EbrDomain<T> {}

impl<T: Send> EbrDomain<T> {
    /// Creates a domain for up to `max_threads` registered threads.
    pub fn new(max_threads: usize) -> Self {
        assert!(max_threads > 0);
        Self {
            global: CachePadded::new(AtomicUsize::new(0)),
            locals: (0..max_threads)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            slots: (0..max_threads)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            orphans: Mutex::new(Vec::new()),
        }
    }

    /// Registers the calling context.
    pub fn register(&self) -> Option<EbrHandle<'_, T>> {
        for (tid, slot) in self.slots.iter().enumerate() {
            if slot.load(Ordering::SeqCst) == 0
                && slot
                    .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return Some(EbrHandle {
                    domain: self,
                    tid,
                    bags: RefCell::new([Vec::new(), Vec::new(), Vec::new()]),
                    since_advance: Cell::new(0),
                    stats: Cell::new(EbrStats::default()),
                    _not_sync: PhantomData,
                });
            }
        }
        None
    }

    /// The current global epoch (diagnostics).
    pub fn epoch(&self) -> usize {
        self.global.load(Ordering::SeqCst)
    }

    /// True if every pinned participant has observed epoch `e`.
    fn all_observed(&self, e: usize) -> bool {
        self.locals.iter().all(|l| {
            let w = l.load(Ordering::SeqCst);
            w & PINNED == 0 || w >> 1 == e
        })
    }
}

impl<T> Drop for EbrDomain<T> {
    fn drop(&mut self) {
        for p in self.orphans.get_mut().unwrap().drain(..) {
            // SAFETY: no handles (they borrow the domain) → nothing pinned →
            // every orphan unreachable.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// Per-thread EBR statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EbrStats {
    /// Pin operations.
    pub pins: u64,
    /// Nodes retired.
    pub retired: u64,
    /// Successful global-epoch advances by this thread.
    pub advances: u64,
    /// Nodes freed by this thread.
    pub freed: u64,
}

/// A registered thread's EBR interface.
pub struct EbrHandle<'d, T: Send> {
    domain: &'d EbrDomain<T>,
    tid: usize,
    /// Retired-node bags, indexed by `epoch % 3`.
    bags: RefCell<[Vec<*mut T>; 3]>,
    since_advance: Cell<usize>,
    stats: Cell<EbrStats>,
    _not_sync: PhantomData<core::cell::Cell<()>>,
}

impl<'d, T: Send> EbrHandle<'d, T> {
    /// This handle's thread id.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Current statistics (copy).
    pub fn stats(&self) -> EbrStats {
        self.stats.get()
    }

    /// Allocates a fresh heap node.
    pub fn alloc(&self, value: T) -> *mut T {
        Box::into_raw(Box::new(value))
    }

    /// Pins the current epoch: shared nodes reached while the guard lives
    /// cannot be freed. Re-entrant pinning is a logic error (enforced by a
    /// debug assertion).
    pub fn pin(&self) -> EbrGuard<'_, 'd, T> {
        let mut s = self.stats.get();
        s.pins += 1;
        self.stats.set(s);
        let local = &self.domain.locals[self.tid];
        debug_assert_eq!(local.load(Ordering::SeqCst) & PINNED, 0, "re-entrant pin");
        let e = self.domain.global.load(Ordering::SeqCst);
        local.store(e << 1 | PINNED, Ordering::SeqCst);
        EbrGuard { handle: self }
    }

    /// Retires a node removed from a structure; it is freed two epoch
    /// advances later.
    ///
    /// # Safety
    /// `node` must be unreachable from the structure, retired exactly once,
    /// and not dereferenced by this thread after the call.
    pub unsafe fn retire(&self, node: *mut T) {
        debug_assert!(!node.is_null());
        let mut s = self.stats.get();
        s.retired += 1;
        self.stats.set(s);
        let e = self.domain.global.load(Ordering::SeqCst);
        self.bags.borrow_mut()[e % 3].push(node);
        let n = self.since_advance.get() + 1;
        self.since_advance.set(n);
        if n >= ADVANCE_EVERY {
            self.since_advance.set(0);
            self.try_advance();
        }
    }

    /// Attempts to advance the global epoch; on success frees this
    /// thread's bag from two epochs ago. Returns whether the epoch moved.
    pub fn try_advance(&self) -> bool {
        let e = self.domain.global.load(Ordering::SeqCst);
        if !self.domain.all_observed(e) {
            return false;
        }
        if self
            .domain
            .global
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            // Someone else advanced; our bags are still freed on *our* next
            // successful advance.
            return false;
        }
        let mut s = self.stats.get();
        s.advances += 1;
        // After the advance to e+1, nodes retired in epoch e-1 (bag index
        // (e+2) % 3 == (e-1) % 3) are unreachable by every thread.
        let bag = &mut self.bags.borrow_mut()[(e + 2) % 3];
        for p in bag.drain(..) {
            s.freed += 1;
            // SAFETY: retired in epoch e-1; every thread has observed ≥ e,
            // so no pinned reader can still hold it.
            drop(unsafe { Box::from_raw(p) });
        }
        self.stats.set(s);
        true
    }

    /// Nodes currently awaiting reclamation on this thread.
    pub fn pending(&self) -> usize {
        self.bags.borrow().iter().map(Vec::len).sum()
    }
}

impl<T: Send> Drop for EbrHandle<'_, T> {
    fn drop(&mut self) {
        // Opportunistic advances to drain what we can, then orphan the rest.
        for _ in 0..3 {
            self.try_advance();
        }
        let leftovers: Vec<*mut T> = self
            .bags
            .get_mut()
            .iter_mut()
            .flat_map(|b| b.drain(..))
            .collect();
        if !leftovers.is_empty() {
            self.domain.orphans.lock().unwrap().extend(leftovers);
        }
        self.domain.locals[self.tid].store(0, Ordering::SeqCst);
        self.domain.slots[self.tid].store(0, Ordering::SeqCst);
    }
}

/// An RAII pin. While alive, nodes observed through shared pointers cannot
/// be freed.
pub struct EbrGuard<'h, 'd, T: Send> {
    handle: &'h EbrHandle<'d, T>,
}

impl<T: Send> Drop for EbrGuard<'_, '_, T> {
    fn drop(&mut self) {
        self.handle.domain.locals[self.handle.tid].store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicPtr;
    use std::sync::Arc;

    #[test]
    fn retire_frees_after_two_advances() {
        let d = EbrDomain::<u64>::new(1);
        let h = d.register().unwrap();
        let n = h.alloc(1);
        // SAFETY: never published.
        unsafe { h.retire(n) };
        assert_eq!(h.pending(), 1);
        // With no one pinned, each try_advance succeeds; after enough
        // advances the bag cycles out.
        for _ in 0..3 {
            h.try_advance();
        }
        assert_eq!(h.pending(), 0);
        assert_eq!(h.stats().freed, 1);
    }

    #[test]
    fn pinned_reader_blocks_advance() {
        let d = EbrDomain::<u64>::new(2);
        let h0 = d.register().unwrap();
        let h1 = d.register().unwrap();
        let e0 = d.epoch();
        let _guard = h1.pin();
        // h1 observed e0; advance to e0+1 is allowed once...
        assert!(h0.try_advance());
        // ...but a further advance requires h1 to re-pin at the new epoch.
        assert!(!h0.try_advance());
        assert_eq!(d.epoch(), e0 + 1);
    }

    #[test]
    fn stalled_reader_blocks_reclamation() {
        // The anti-real-time behaviour: one pinned thread, unbounded garbage.
        let d = EbrDomain::<u64>::new(2);
        let h0 = d.register().unwrap();
        let h1 = d.register().unwrap();
        let _stalled = h1.pin();
        h0.try_advance(); // one advance is still possible
        for i in 0..1_000 {
            let n = h0.alloc(i);
            // SAFETY: never published.
            unsafe { h0.retire(n) };
        }
        assert!(
            h0.pending() >= 1_000 - ADVANCE_EVERY,
            "stalled reader must pile up garbage, pending = {}",
            h0.pending()
        );
        drop(_stalled);
    }

    #[test]
    fn guard_unpins_on_drop() {
        let d = EbrDomain::<u64>::new(1);
        let h = d.register().unwrap();
        {
            let _g = h.pin();
            assert_eq!(d.locals[0].load(Ordering::SeqCst) & PINNED, PINNED);
        }
        assert_eq!(d.locals[0].load(Ordering::SeqCst) & PINNED, 0);
    }

    #[test]
    fn orphaned_bags_freed_at_domain_drop() {
        use std::sync::atomic::AtomicUsize as A;
        static DROPS: A = A::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let d = EbrDomain::<Counted>::new(2);
            let h0 = d.register().unwrap();
            let h1 = d.register().unwrap();
            let _pin = h1.pin(); // blocks h0's drop-time advances
            let n = h0.alloc(Counted);
            // SAFETY: never published.
            unsafe { h0.retire(n) };
            drop(h0);
            drop(_pin);
            drop(h1);
            assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_swap_retire_stress() {
        let d = Arc::new(EbrDomain::<u64>::new(3));
        let shared = Arc::new(AtomicPtr::<u64>::new(core::ptr::null_mut()));
        let workers: Vec<_> = (0..3)
            .map(|w| {
                let d = Arc::clone(&d);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let h = d.register().unwrap();
                    let mut sum = 0u64;
                    for i in 0..3_000u64 {
                        let g = h.pin();
                        if w == 0 {
                            let p = shared.load(Ordering::SeqCst);
                            if !p.is_null() {
                                // SAFETY: pinned; publishers retire only
                                // after unlinking, frees wait two epochs.
                                sum = sum.wrapping_add(unsafe { *p });
                            }
                        } else {
                            let n = h.alloc(i);
                            let old = shared.swap(n, Ordering::SeqCst);
                            if !old.is_null() {
                                // SAFETY: unlinked; retired exactly once.
                                unsafe { h.retire(old) };
                            }
                        }
                        drop(g);
                    }
                    sum
                })
            })
            .collect();
        for w in workers {
            let _ = w.join().unwrap();
        }
        let last = shared.load(Ordering::SeqCst);
        if !last.is_null() {
            // SAFETY: all threads joined.
            drop(unsafe { Box::from_raw(last) });
        }
    }
}
