//! Hazard pointers (Michael, PODC 2002 / IEEE TPDS 2004).
//!
//! The scheme the paper's introduction cites as reference [11, 12]: each
//! thread owns `K` *hazard pointer* slots; before dereferencing a shared
//! pointer a thread publishes it in a slot and re-validates the source
//! (lock-free — the validation can retry). Removed nodes are *retired* into
//! a thread-local list; when the list exceeds a threshold the thread scans
//! all hazard slots and frees exactly the retired nodes no slot protects —
//! that scan is wait-free and amortizes to O(1) per retirement.
//!
//! The structural limitation the paper exploits: only the `K · N` pointers
//! in the hazard array are ever protected, so a structure cannot hold an
//! unbounded number of safe references *from within itself* — which is why
//! reference counting remains necessary for structures like the
//! paper's §5 priority queue, and why this baseline only appears in the
//! stack/queue experiments (E2/E3).
//!
//! Unlike the arena-based reference-counting schemes, hazard-pointer nodes
//! are ordinary heap allocations (`Box`), freed for real — the scheme's
//! selling point.

use core::cell::RefCell;
use core::marker::PhantomData;
use core::ptr;
use core::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::collections::HashSet;
use std::sync::Mutex;

use wfrc_primitives::CachePadded;

/// Default hazard slots per thread. Treiber stacks need 1, Michael–Scott
/// queues need 2 per operation (head + next); 4 leaves headroom for nested
/// traversals.
pub const DEFAULT_SLOTS_PER_THREAD: usize = 4;

/// A hazard-pointer reclamation domain for heap nodes of type `T`.
pub struct HpDomain<T> {
    /// `hazards[t * k + i]`: slot `i` of thread `t`. Null = unprotected.
    hazards: Box<[CachePadded<AtomicPtr<T>>]>,
    /// Registration flags.
    slots: Box<[CachePadded<AtomicUsize>]>,
    /// Hazard slots per thread (`K`).
    k: usize,
    /// Retire-list length that triggers a scan (`R` in Michael's paper;
    /// must exceed `N · K` for the amortization argument).
    scan_threshold: usize,
    /// Retired nodes orphaned by handles that unregistered before their
    /// lists drained. Teardown path only — never touched by hot operations.
    orphans: Mutex<Vec<*mut T>>,
}

// SAFETY: raw pointers in the hazard array and orphan list refer to heap
// nodes managed by the protocol; T: Send ensures they may be dropped on any
// thread.
unsafe impl<T: Send> Sync for HpDomain<T> {}
unsafe impl<T: Send> Send for HpDomain<T> {}

impl<T: Send> HpDomain<T> {
    /// Creates a domain for `max_threads` threads with
    /// [`DEFAULT_SLOTS_PER_THREAD`] hazard slots each.
    pub fn new(max_threads: usize) -> Self {
        Self::with_slots(max_threads, DEFAULT_SLOTS_PER_THREAD)
    }

    /// Creates a domain with `k` hazard slots per thread.
    pub fn with_slots(max_threads: usize, k: usize) -> Self {
        assert!(max_threads > 0 && k > 0);
        let total = max_threads * k;
        Self {
            hazards: (0..total)
                .map(|_| CachePadded::new(AtomicPtr::new(ptr::null_mut())))
                .collect(),
            slots: (0..max_threads)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            k,
            scan_threshold: (2 * total).max(64),
            orphans: Mutex::new(Vec::new()),
        }
    }

    /// Registers the calling context.
    pub fn register(&self) -> Option<HpHandle<'_, T>> {
        for (tid, slot) in self.slots.iter().enumerate() {
            if slot.load(Ordering::SeqCst) == 0
                && slot
                    .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return Some(HpHandle {
                    domain: self,
                    tid,
                    retired: RefCell::new(Vec::new()),
                    stats: HpStats::default(),
                    _not_sync: PhantomData,
                });
            }
        }
        None
    }

    /// Hazard slots per thread.
    pub fn slots_per_thread(&self) -> usize {
        self.k
    }

    fn collect_hazards(&self) -> HashSet<*mut T> {
        self.hazards
            .iter()
            .map(|h| h.load(Ordering::SeqCst))
            .filter(|p| !p.is_null())
            .collect()
    }
}

impl<T> Drop for HpDomain<T> {
    fn drop(&mut self) {
        // No handles can outlive the domain (they borrow it), so nothing is
        // protected: every orphan is reclaimable.
        for p in self.orphans.get_mut().unwrap().drain(..) {
            // SAFETY: retired exactly once, unreachable, unprotected.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// Per-thread hazard-pointer statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HpStats {
    /// `protect` validation retries (lock-free loop; unbounded in theory).
    pub protect_retries: u64,
    /// Worst single-call validation retry count.
    pub max_protect_retries: u64,
    /// Nodes retired.
    pub retired: u64,
    /// Scans performed.
    pub scans: u64,
    /// Nodes actually freed by scans.
    pub freed: u64,
}

/// A registered thread's hazard-pointer interface.
pub struct HpHandle<'d, T: Send> {
    domain: &'d HpDomain<T>,
    tid: usize,
    retired: RefCell<Vec<*mut T>>,
    stats: HpStats,
    _not_sync: PhantomData<core::cell::Cell<()>>,
}

impl<'d, T: Send> HpHandle<'d, T> {
    /// This handle's thread id.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Current statistics (copy).
    pub fn stats(&self) -> HpStats {
        self.stats
    }

    fn hazard(&self, slot: usize) -> &AtomicPtr<T> {
        assert!(slot < self.domain.k, "hazard slot out of range");
        &self.domain.hazards[self.tid * self.domain.k + slot]
    }

    /// Allocates a fresh heap node (plain `Box` — hazard pointers reclaim
    /// to the allocator, not to a pool).
    pub fn alloc(&self, value: T) -> *mut T {
        Box::into_raw(Box::new(value))
    }

    /// Publishes `src`'s current value in hazard slot `slot` and
    /// re-validates until stable (Michael's protect loop). Returns the
    /// protected pointer (possibly null).
    ///
    /// The loop is lock-free, not wait-free: a writer flipping `src` can
    /// starve it — the exact weakness the paper's announcement scheme
    /// removes for reference counts.
    pub fn protect(&mut self, slot: usize, src: &AtomicPtr<T>) -> *mut T {
        let hazard = &self.domain.hazards[self.tid * self.domain.k + slot];
        let mut retries: u64 = 0;
        let mut p = src.load(Ordering::SeqCst);
        loop {
            hazard.store(p, Ordering::SeqCst);
            let q = src.load(Ordering::SeqCst);
            if q == p {
                self.stats.protect_retries += retries;
                self.stats.max_protect_retries = self.stats.max_protect_retries.max(retries);
                return p;
            }
            retries += 1;
            p = q;
        }
    }

    /// Clears hazard slot `slot`.
    pub fn clear(&self, slot: usize) {
        self.hazard(slot).store(ptr::null_mut(), Ordering::SeqCst);
    }

    /// Retires a node removed from a structure: it will be freed once no
    /// hazard slot protects it.
    ///
    /// # Safety
    /// `node` must have been made unreachable from the structure, be
    /// retired exactly once, and never be dereferenced by this thread
    /// again.
    pub unsafe fn retire(&mut self, node: *mut T) {
        debug_assert!(!node.is_null());
        self.stats.retired += 1;
        self.retired.get_mut().push(node);
        if self.retired.get_mut().len() >= self.domain.scan_threshold {
            self.scan();
        }
    }

    /// The scan step: frees every retired node no hazard protects.
    /// Wait-free (one pass over a fixed-size array plus set operations).
    pub fn scan(&mut self) {
        self.stats.scans += 1;
        let protected = self.domain.collect_hazards();
        let retired = self.retired.get_mut();
        let mut kept = Vec::with_capacity(retired.len());
        for p in retired.drain(..) {
            if protected.contains(&p) {
                kept.push(p);
            } else {
                self.stats.freed += 1;
                // SAFETY: unreachable (retire contract) and unprotected.
                drop(unsafe { Box::from_raw(p) });
            }
        }
        *retired = kept;
    }

    /// Number of nodes currently awaiting reclamation on this thread.
    pub fn pending(&self) -> usize {
        self.retired.borrow().len()
    }
}

impl<T: Send> Drop for HpHandle<'_, T> {
    fn drop(&mut self) {
        // Last-chance scan, then hand leftovers to the domain.
        self.scan();
        let leftovers: Vec<*mut T> = self.retired.get_mut().drain(..).collect();
        if !leftovers.is_empty() {
            self.domain.orphans.lock().unwrap().extend(leftovers);
        }
        // Clear our hazard slots and release the registration.
        for i in 0..self.domain.k {
            self.clear(i);
        }
        self.domain.slots[self.tid].store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);

    struct Counted(#[allow(dead_code)] u64);
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn protect_returns_source_value() {
        let d = HpDomain::<u64>::new(1);
        let mut h = d.register().unwrap();
        let n = h.alloc(5);
        let src = AtomicPtr::new(n);
        let p = h.protect(0, &src);
        assert_eq!(p, n);
        // SAFETY: protected.
        assert_eq!(unsafe { *p }, 5);
        h.clear(0);
        // SAFETY: we own it; unreachable.
        unsafe { h.retire(n) };
        h.scan();
        assert_eq!(h.pending(), 0);
    }

    #[test]
    fn protected_node_survives_scan() {
        let d = HpDomain::<u64>::new(2);
        let mut h0 = d.register().unwrap();
        let mut h1 = d.register().unwrap();
        let n = h0.alloc(9);
        let src = AtomicPtr::new(n);
        let p = h1.protect(0, &src);
        assert_eq!(p, n);
        // Thread 0 retires it; thread 1 still protects it.
        // SAFETY: unreachable from any structure.
        unsafe { h0.retire(n) };
        h0.scan();
        assert_eq!(h0.pending(), 1, "protected node must not be freed");
        // SAFETY: still protected by h1's hazard.
        assert_eq!(unsafe { *p }, 9);
        h1.clear(0);
        h0.scan();
        assert_eq!(h0.pending(), 0);
    }

    #[test]
    fn orphans_freed_at_domain_drop() {
        DROPS.store(0, Ordering::SeqCst);
        {
            let d = HpDomain::<Counted>::new(2);
            let mut h0 = d.register().unwrap();
            let h1 = d.register().unwrap();
            let n = h0.alloc(Counted(1));
            let src = AtomicPtr::new(n);
            // Protect from the *other* handle so h0's drop-scan can't free it.
            let mut h1 = h1;
            let _p = h1.protect(0, &src);
            // SAFETY: unreachable.
            unsafe { h0.retire(n) };
            drop(h0); // orphaned (still protected by h1)
            assert_eq!(DROPS.load(Ordering::SeqCst), 0);
            drop(h1);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn threshold_scan_amortizes() {
        let d = HpDomain::<u64>::with_slots(1, 1);
        let mut h = d.register().unwrap();
        for i in 0..500 {
            let n = h.alloc(i);
            // SAFETY: never published anywhere.
            unsafe { h.retire(n) };
        }
        let s = h.stats();
        assert!(s.scans >= 1, "threshold must have triggered scans");
        assert!(h.pending() < d.scan_threshold);
    }

    #[test]
    fn concurrent_protect_retire_stress() {
        let d = Arc::new(HpDomain::<u64>::new(3));
        let shared = Arc::new(AtomicPtr::<u64>::new(ptr::null_mut()));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let d = Arc::clone(&d);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut h = d.register().unwrap();
                    for i in 0..3_000u64 {
                        let n = h.alloc(i);
                        let old = shared.swap(n, Ordering::SeqCst);
                        if !old.is_null() {
                            // SAFETY: we unlinked `old`; each swap result is
                            // retired exactly once.
                            unsafe { h.retire(old) };
                        }
                    }
                })
            })
            .collect();
        let reader = {
            let d = Arc::clone(&d);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut h = d.register().unwrap();
                let mut sum = 0u64;
                for _ in 0..3_000 {
                    let p = h.protect(0, &shared);
                    if !p.is_null() {
                        // SAFETY: protected.
                        sum = sum.wrapping_add(unsafe { *p });
                    }
                    h.clear(0);
                }
                sum
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        let _ = reader.join().unwrap();
        // Final published node is never retired; clean up.
        let last = shared.load(Ordering::SeqCst);
        if !last.is_null() {
            // SAFETY: all threads done; sole owner.
            drop(unsafe { Box::from_raw(last) });
        }
    }
}
