//! # wfrc — Wait-Free Reference Counting and Memory Management
//!
//! A complete Rust implementation of Håkan Sundell's *Wait-Free Reference
//! Counting and Memory Management* (Chalmers TR 2004-10 / IPPS 2005),
//! together with the baselines it is evaluated against and the data
//! structures that exercise it. This crate is the umbrella: it re-exports
//! the workspace and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! * [`core`] (`wfrc-core`) — the paper's contribution: wait-free
//!   `DeRefLink`/`ReleaseRef`/`HelpDeRef` reference counting (Figure 4) and
//!   the wait-free `AllocNode`/`FreeNode` free-list (Figure 5), behind a
//!   safe RAII API.
//! * [`baselines`] (`wfrc-baselines`) — Valois-style lock-free reference
//!   counting (the paper's §5 comparator), hazard pointers, and
//!   epoch-based reclamation.
//! * [`structures`] (`wfrc-structures`) — Treiber stack, Michael–Scott
//!   queue, skiplist priority queue, and ordered list, generic over the
//!   reference-counting scheme; plus hazard/epoch stack & queue variants.
//! * [`sim`] (`wfrc-sim`) — the measurement harness behind the `bench/`
//!   experiment binaries (E1–E9; see DESIGN.md §5).
//! * [`model`] (`wfrc-model`) — an exhaustive interleaving checker for the
//!   announcement protocol (mechanized Lemma 2, with a demonstrably
//!   detectable naive-scheme bug).
//! * [`primitives`] (`wfrc-primitives`) — FAA/CAS/SWAP wrappers, cache
//!   padding, tagged pointers, backoff.
//!
//! ## Quickstart
//!
//! ```
//! use wfrc::core::{DomainConfig, Link, WfrcDomain};
//!
//! // A domain manages a fixed pool of nodes for up to N threads.
//! let domain = WfrcDomain::<u64>::new(DomainConfig::new(4, 1024));
//! let handle = domain.register().unwrap();
//!
//! let node = handle.alloc_with(|v| *v = 42).unwrap();
//! let shared: Link<u64> = Link::null();
//! handle.store(&shared, Some(&node));
//!
//! // DeRefLink: wait-free, even while other threads retarget `shared`.
//! let seen = handle.deref(&shared).unwrap();
//! assert_eq!(*seen, 42);
//! # drop(seen);
//!
//! // Read-optimized tier (PR 9): pin once, then every read is a plain
//! // load — zero count traffic; upgrade to an owned ref on demand.
//! let guard = handle.pin();
//! let snap = guard.snapshot(&shared).unwrap();
//! assert_eq!(*snap, 42);
//! let owned = snap.upgrade().unwrap();
//! drop(guard);
//! assert_eq!(*owned, 42);
//! # drop(owned);
//! # handle.store(&shared, None);
//! # drop(node);
//! # drop(handle);
//! # assert!(domain.leak_check().is_clean());
//! ```
//!
//! See `examples/` for complete programs: `quickstart`, `task_scheduler`
//! (priority-queue deadline scheduler), `event_pipeline` (queue pipeline),
//! and `realtime_watchdog` (the wait-freedom guarantee, observed).

#![warn(missing_docs)]

pub use wfrc_baselines as baselines;
pub use wfrc_core as core;
pub use wfrc_model as model;
pub use wfrc_primitives as primitives;
pub use wfrc_sim as sim;
pub use wfrc_structures as structures;
