#!/usr/bin/env bash
# Regenerates every experiment table in EXPERIMENTS.md into results/.
# Usage: scripts/run_experiments.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
if [[ "${1:-}" == "--quick" ]]; then
    QUICK="--ops 5000"
fi

mkdir -p results
cargo build --release -p bench --bins

run() {
    local name="$1"; shift
    echo "== $name $*"
    "./target/release/$name" "$@" | tee "results/$name.txt"
}

run e1_priority_queue $QUICK
run e2_stack $QUICK
run e3_queue $QUICK
run e4_deref_interference --threads 0,1,2,4,8 ${QUICK:---ops 500000}
run e5_alloc_interference $QUICK
run e7_fairness
run e9_stall

# E8: one run per compile-time ablation.
cargo run --release -p bench --bin e8_ablations $QUICK | tee results/e8_baseline.txt
for feat in ablation-no-helping ablation-no-pad ablation-relaxed-mmref; do
    cargo run --release -p bench --features "$feat" --bin e8_ablations $QUICK \
        | tee "results/e8_${feat#ablation-}.txt"
done

echo "All experiment tables written to results/."
