#!/usr/bin/env bash
# Bench trajectory snapshot: runs short E4/E5/E8/E9/E11/E12 configurations —
# including the PR5 oscillating-reclaim modes, the PR6 mixed-size
# per-class arena modes, the PR7 leased-slot server workload, the
# PR8 sentinel chaos mode (killed lease holders + admission control),
# the PR9 snapshot read path (E4 --snapshot + the E8 snapshot ablation),
# and the PR10 weak-reference graph churn (E13, with and without the
# snapshot pin composition) — and writes a machine-readable
# BENCH_PR10.json at the repo root (one entry
# per configuration, each embedding the experiment's table as headers +
# rows: scheme × threads × mode → ops/s, resident curve, class curve,
# checkout tails, …), so future PRs can diff their numbers against this
# one's.
#
# Usage: scripts/bench_snapshot.sh [--quick] [--out FILE]
#   --quick   CI-sized op counts (the bench-smoke job runs this)
#   --out     output path (default: BENCH_PR10.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
OUT="BENCH_PR10.json"
while [[ $# -gt 0 ]]; do
    case "$1" in
        --quick) QUICK=1; shift ;;
        --out) OUT="$2"; shift 2 ;;
        *) echo "unknown argument: $1 (expected --quick/--out)" >&2; exit 2 ;;
    esac
done

if [[ "$QUICK" == 1 ]]; then
    E4_READ_ARGS="--mode read --threads 0,2 --ops 2000"
    E4_SNAP_ARGS="--mode read --snapshot --threads 0,2 --ops 20000"
    E4_WRITE_ARGS="--mode write --threads 2,8 --ops 5000"
    E8_SNAP_ARGS="--mode snapshot --threads 0,2 --ops 20000"
    E5_ARGS="--threads 2 --ops 5000"
    E5_RECLAIM_ARGS="--threads 2 --ops 8000 --reclaim"
    E9_ARGS="--ops 5000"
    E9_RECLAIM_ARGS="--ops 5000 --reclaim"
    E11_ARGS="--threads 2 --ops 5000"
    E11_RECLAIM_ARGS="--threads 2 --ops 8000 --grow --reclaim"
    # Workers above the slot count so the waiter/handoff path is on the
    # measured path even on small CI boxes.
    E12_ARGS="--tasks 1000 --slots 4,16 --workers 8 --ops 50"
    E12_RECLAIM_ARGS="--tasks 1000 --slots 8 --workers 8 --ops 50 --grow --reclaim"
    E12_SENTINEL_ARGS="--tasks 1000 --slots 8 --workers 8 --ops 50 --kill 8 --admission-ms 50"
    E13_ARGS="--threads 2 --ops 5000 --weak-ratio 0.3"
    E13_SNAP_ARGS="--threads 2 --ops 5000 --weak-ratio 0.3 --snapshot"
else
    E4_READ_ARGS="--mode read --threads 0,2,8 --ops 50000"
    E4_SNAP_ARGS="--mode read --snapshot --threads 0,2,8 --ops 200000"
    E4_WRITE_ARGS="--mode write --threads 1,2,4,8 --ops 100000"
    E8_SNAP_ARGS="--mode snapshot --threads 0,2 --ops 100000"
    E5_ARGS="--threads 2,8 --ops 50000"
    E5_RECLAIM_ARGS="--threads 2,8 --ops 50000 --reclaim"
    E9_ARGS="--ops 20000"
    E9_RECLAIM_ARGS="--ops 20000 --reclaim"
    E11_ARGS="--threads 2,8 --ops 40000"
    E11_RECLAIM_ARGS="--threads 2,8 --ops 40000 --grow --reclaim"
    E12_ARGS="--tasks 10000 --slots 16,64 --workers 32 --ops 200"
    E12_RECLAIM_ARGS="--tasks 10000 --slots 64 --workers 32 --ops 200 --grow --reclaim"
    E12_SENTINEL_ARGS="--tasks 10000 --slots 64 --workers 32 --ops 200 --kill 64 --admission-ms 100"
    E13_ARGS="--threads 2,8 --ops 40000 --weak-ratio 0.3"
    E13_SNAP_ARGS="--threads 2,8 --ops 40000 --weak-ratio 0.3 --snapshot"
fi

cargo build --release -p bench --bins

# Runs one experiment binary and extracts the JSON table it prints after
# the rendered text table (Table::to_json starts with "{" on its own line).
run_json() {
    local bin="$1"; shift
    local out
    out="$("./target/release/$bin" "$@" --json)"
    echo "$out" >&2
    echo "$out" | awk '/^\{$/{found=1} found'
}

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

{
    echo '{'
    echo "  \"snapshot\": \"PR10 weak references: strong+weak packed counts + graph churn\","
    echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"quick\": $([[ "$QUICK" == 1 ]] && echo true || echo false),"
    echo '  "configs": ['

    first=1
    emit() {
        local id="$1" bin="$2"; shift 2
        local blob
        blob="$(run_json "$bin" "$@")"
        if [[ -z "$blob" ]]; then
            echo "error: $bin produced no JSON table" >&2
            exit 1
        fi
        [[ "$first" == 1 ]] || echo ','
        first=0
        echo "    {\"id\": \"$id\", \"args\": \"$*\", \"table\":"
        echo "$blob" | sed 's/^/      /'
        printf '    }'
    }

    emit "e4-read" e4_deref_interference $E4_READ_ARGS
    emit "e4-read-snapshot" e4_deref_interference $E4_SNAP_ARGS
    emit "e4-write" e4_deref_interference $E4_WRITE_ARGS
    emit "e8-snapshot" e8_ablations $E8_SNAP_ARGS
    emit "e5-churn" e5_alloc_interference $E5_ARGS
    emit "e5-reclaim" e5_alloc_interference $E5_RECLAIM_ARGS
    emit "e9-stall" e9_stall $E9_ARGS
    emit "e9-reclaim" e9_stall $E9_RECLAIM_ARGS
    emit "e11-mixed" e11_mixed_size $E11_ARGS
    emit "e11-grow-reclaim" e11_mixed_size $E11_RECLAIM_ARGS
    emit "e12-server" e12_server $E12_ARGS
    emit "e12-grow-reclaim" e12_server $E12_RECLAIM_ARGS
    emit "e12-sentinel-chaos" e12_server $E12_SENTINEL_ARGS
    emit "e13-graph-churn" e13_graph_churn $E13_ARGS
    emit "e13-graph-snapshot" e13_graph_churn $E13_SNAP_ARGS

    echo ''
    echo '  ]'
    echo '}'
} > "$TMP"

# Fail on malformed JSON before publishing the snapshot.
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$TMP" >/dev/null
elif command -v jq >/dev/null 2>&1; then
    jq empty "$TMP"
else
    echo "warning: no JSON validator (python3/jq) found; skipping validation" >&2
fi

mv "$TMP" "$OUT"
trap - EXIT
echo "wrote $OUT"
